#include "fault/dictionary.h"

#include "common/error.h"
#include "fault/parallel_faultsim.h"
#include "sim/event_sim.h"

namespace femu {

namespace {

std::uint64_t fault_key(const Fault& fault) {
  return (static_cast<std::uint64_t>(fault.cycle) << 32) | fault.ff_index;
}

}  // namespace

FaultDictionary FaultDictionary::build(const Circuit& circuit,
                                       const Testbench& testbench,
                                       std::span<const Fault> faults) {
  FaultDictionary dict;

  // Grade everything in bulk first; only failures need syndromes.
  ParallelFaultSimulator grader(circuit, testbench);
  const CampaignResult graded = grader.run(faults);
  dict.golden_outputs_ = grader.golden().outputs;

  // Re-simulate each failure up to its detection cycle to capture the
  // syndrome (event-driven: the disturbed cone is small).
  EventSimulator sim(circuit);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultOutcome& outcome = graded.outcomes()[i];
    if (outcome.cls != FaultClass::kFailure) {
      continue;
    }
    const Fault& fault = faults[i];
    sim.set_state(grader.golden().states[fault.cycle]);
    sim.flip_state_bit(fault.ff_index);
    BitVec syndrome;
    for (std::size_t t = fault.cycle; t <= outcome.detect_cycle; ++t) {
      BitVec out = sim.eval(testbench.vector(t));
      if (t == outcome.detect_cycle) {
        out ^= dict.golden_outputs_[t];
        syndrome = std::move(out);
        break;
      }
      sim.step();
    }
    FEMU_CHECK(syndrome.any(), "dictionary: empty syndrome for failure at ff=",
               fault.ff_index, " c=", fault.cycle);
    const FaultSignature sig{outcome.detect_cycle, syndrome.hash()};
    dict.index_[Key{sig.detect_cycle, sig.syndrome_hash}].push_back(fault);
    dict.per_fault_[fault_key(fault)] = sig;
    ++dict.entries_;
  }
  return dict;
}

std::vector<Fault> FaultDictionary::lookup(const FaultSignature& sig) const {
  const auto it = index_.find(Key{sig.detect_cycle, sig.syndrome_hash});
  return it == index_.end() ? std::vector<Fault>{} : it->second;
}

std::vector<Fault> FaultDictionary::diagnose(
    std::span<const BitVec> observed_outputs) const {
  const std::size_t cycles =
      std::min(observed_outputs.size(), golden_outputs_.size());
  for (std::size_t t = 0; t < cycles; ++t) {
    if (observed_outputs[t] == golden_outputs_[t]) {
      continue;
    }
    BitVec syndrome = observed_outputs[t];
    syndrome ^= golden_outputs_[t];
    return lookup(
        FaultSignature{static_cast<std::uint32_t>(t), syndrome.hash()});
  }
  return {};
}

FaultSignature FaultDictionary::signature_of(const Fault& fault) const {
  const auto it = per_fault_.find(fault_key(fault));
  return it == per_fault_.end() ? FaultSignature{} : it->second;
}

double FaultDictionary::resolution() const {
  if (entries_ == 0) {
    return 1.0;
  }
  return static_cast<double>(index_.size()) / static_cast<double>(entries_);
}

}  // namespace femu
