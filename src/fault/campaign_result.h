#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "fault/fault.h"

namespace femu {

/// Aggregate counts of a fault-grading campaign (the paper's in-text result:
/// 49.2% failure, 4.4% latent, 46.4% silent for b14).
struct ClassCounts {
  std::size_t failure = 0;
  std::size_t latent = 0;
  std::size_t silent = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return failure + latent + silent;
  }
  [[nodiscard]] double failure_fraction() const noexcept {
    return total() == 0 ? 0.0 : static_cast<double>(failure) / total();
  }
  [[nodiscard]] double latent_fraction() const noexcept {
    return total() == 0 ? 0.0 : static_cast<double>(latent) / total();
  }
  [[nodiscard]] double silent_fraction() const noexcept {
    return total() == 0 ? 0.0 : static_cast<double>(silent) / total();
  }

  /// Tallies graded outcomes into the counts — the one classification
  /// switch every campaign-result shape (SEU, MBU, SET) shares.
  void add(std::span<const FaultOutcome> outcomes) noexcept {
    for (const FaultOutcome& outcome : outcomes) {
      switch (outcome.cls) {
        case FaultClass::kFailure: ++failure; break;
        case FaultClass::kLatent:  ++latent;  break;
        case FaultClass::kSilent:  ++silent;  break;
      }
    }
  }
};

/// Full record of a campaign: the fault schedule and one outcome per fault,
/// plus derived statistics. Produced identically by every engine, which is
/// how the tests cross-validate the emulation model against plain fault
/// simulation.
class CampaignResult {
 public:
  CampaignResult() = default;
  CampaignResult(std::vector<Fault> faults, std::vector<FaultOutcome> outcomes);

  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] const std::vector<FaultOutcome>& outcomes() const noexcept {
    return outcomes_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return faults_.size(); }

  [[nodiscard]] const ClassCounts& counts() const noexcept { return counts_; }

  /// Mean cycles from injection to output detection, over failure faults.
  [[nodiscard]] double mean_detection_latency() const;

  /// Mean cycles from injection to state re-convergence, over silent faults.
  [[nodiscard]] double mean_convergence_latency() const;

  /// Failure count per flip-flop — the weak-area map the paper's intro
  /// motivates (re-design cost shrinks when weak FFs are found early).
  /// Indexed by ff_index; size = max ff_index + 1.
  [[nodiscard]] std::vector<std::size_t> per_ff_failures() const;

  /// Flip-flops ordered by descending failure count (worst first).
  [[nodiscard]] std::vector<std::size_t> weakest_ffs(std::size_t top_n) const;

  /// One line per fault: ff,cycle,class,detect_cycle,converge_cycle.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<Fault> faults_;
  std::vector<FaultOutcome> outcomes_;
  ClassCounts counts_;
};

}  // namespace femu
