#include "fault/set_model.h"

#include <algorithm>

#include "common/error.h"
#include "fault/fault_list.h"

namespace femu {

std::uint16_t set_pulse_q(double width_fraction) {
  FEMU_CHECK(width_fraction >= 0.0 && width_fraction <= 1.0,
             "pulse width fraction ", width_fraction, " outside [0, 1]");
  return static_cast<std::uint16_t>(
      width_fraction * static_cast<double>(kSetPulseFull) + 0.5);
}

bool set_pulse_latches(NodeId node, std::uint32_t cycle, std::uint32_t ff,
                       std::uint16_t pulse_q) noexcept {
  if (pulse_q >= kSetPulseFull) {
    return true;
  }
  // splitmix64-style finalizer over the packed (node, cycle, ff) identity:
  // platform-independent, stateless, uniform in its low bits.
  std::uint64_t x = (std::uint64_t{node} << 32) ^ cycle;
  x ^= 0x9e3779b97f4a7c15ULL + (std::uint64_t{ff} << 17);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return (x & 0xff) < pulse_q;
}

SetSites::SetSites(const Circuit& circuit)
    : rep_of_(circuit.node_count(), kInvalidNode),
      rep_inverted_(circuit.node_count(), 0) {
  circuit.validate();
  const std::size_t num_nodes = circuit.node_count();
  sites_.reserve(circuit.num_gates());
  for (NodeId id = 0; id < num_nodes; ++id) {
    if (is_comb_cell(circuit.type(id))) {
      sites_.push_back(id);
    }
  }

  // Reference census: how often each node is read, and by what. A site may
  // collapse onto its consumer only when it has exactly one reader, that
  // reader is an inversion-transparent unary gate, and nothing else (PO,
  // DFF D pin, another gate) observes it — then flipping the site for a
  // cycle is behaviourally identical to flipping the consumer.
  std::vector<std::uint32_t> refs(num_nodes, 0);
  std::vector<NodeId> sole_reader(num_nodes, kInvalidNode);
  for (NodeId id = 0; id < num_nodes; ++id) {
    for (const NodeId f : circuit.fanins(id)) {
      ++refs[f];
      sole_reader[f] = id;
    }
  }
  for (const auto& port : circuit.outputs()) {
    ++refs[port.driver];
    sole_reader[port.driver] = kInvalidNode;  // a PO is never collapsible
  }

  // Descending node-id order: a chain n -> buf -> not -> ... resolves each
  // link to the already-final representative of its consumer. The chain
  // parity (odd number of kNot links to the representative) rides along:
  // SET inversions are parity-blind, but polarity-carrying models
  // (stuck-at) translate their forced value through it.
  for (std::size_t s = sites_.size(); s-- > 0;) {
    const NodeId n = sites_[s];
    rep_of_[n] = n;
    if (refs[n] != 1) continue;
    const NodeId c = sole_reader[n];
    if (c == kInvalidNode) continue;
    const CellType ct = circuit.type(c);
    if (ct == CellType::kBuf || ct == CellType::kNot) {
      rep_of_[n] = rep_of_[c];
      rep_inverted_[n] =
          static_cast<std::uint8_t>((ct == CellType::kNot) ^
                                    (rep_inverted_[c] != 0));
    }
  }

  // Group members by representative: reps ascending, members of each class
  // ascending within it.
  members_ = sites_;
  std::sort(members_.begin(), members_.end(), [&](NodeId a, NodeId b) {
    return std::pair{rep_of_[a], a} < std::pair{rep_of_[b], b};
  });
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i == 0 || rep_of_[members_[i]] != rep_of_[members_[i - 1]]) {
      reps_.push_back(rep_of_[members_[i]]);
      class_begin_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  class_begin_.push_back(static_cast<std::uint32_t>(members_.size()));
}

std::span<const NodeId> SetSites::class_members(NodeId rep) const {
  const auto it = std::lower_bound(reps_.begin(), reps_.end(), rep);
  FEMU_CHECK(it != reps_.end() && *it == rep, "node ", rep,
             " is not a SET class representative");
  const std::size_t i = static_cast<std::size_t>(it - reps_.begin());
  return std::span<const NodeId>(members_).subspan(
      class_begin_[i], class_begin_[i + 1] - class_begin_[i]);
}

std::vector<SetFault> complete_set_fault_list(const SetSites& sites,
                                              std::size_t num_cycles,
                                              bool collapsed,
                                              std::uint16_t pulse_q) {
  const std::span<const NodeId> nodes =
      collapsed ? sites.representatives() : sites.sites();
  std::vector<SetFault> faults;
  faults.reserve(nodes.size() * num_cycles);
  for (std::uint32_t cycle = 0; cycle < num_cycles; ++cycle) {
    for (const NodeId node : nodes) {
      faults.push_back(SetFault{node, cycle, pulse_q});
    }
  }
  return faults;
}

std::vector<SetFault> sample_set_fault_list(const SetSites& sites,
                                            std::size_t num_cycles,
                                            std::size_t count,
                                            std::uint64_t seed,
                                            std::uint16_t pulse_q) {
  const std::span<const NodeId> reps = sites.representatives();
  // Sorted index sample == schedule (cycle-major) order.
  const std::vector<std::uint64_t> chosen =
      sample_index_set(std::uint64_t{reps.size()} * num_cycles, count, seed);
  std::vector<SetFault> faults;
  faults.reserve(count);
  for (const std::uint64_t index : chosen) {
    faults.push_back(SetFault{reps[index % reps.size()],
                              static_cast<std::uint32_t>(index / reps.size()),
                              pulse_q});
  }
  return faults;
}

SetCampaignResult expand_collapsed_result(const SetSites& sites,
                                          const SetCampaignResult& rep_result) {
  SetCampaignResult out;
  out.faults.reserve(rep_result.faults.size());
  out.outcomes.reserve(rep_result.outcomes.size());
  for (std::size_t i = 0; i < rep_result.faults.size(); ++i) {
    const SetFault& fault = rep_result.faults[i];
    if (sites.representative(fault.node) == fault.node) {
      // Exact for full-width faults (the collapse equivalence). At narrower
      // pulse widths the per-member latch draws differ (the draw is keyed
      // on the fault's own node), so member outcomes are statistically
      // exchangeable with the representative's — same latch probability —
      // but not bit-identical; aggregate counts remain representative.
      for (const NodeId member : sites.class_members(fault.node)) {
        out.faults.push_back(SetFault{member, fault.cycle, fault.pulse_q});
        out.outcomes.push_back(rep_result.outcomes[i]);
      }
    } else {
      // A raw (uncollapsed) site: its own evidence, passed through.
      out.faults.push_back(fault);
      out.outcomes.push_back(rep_result.outcomes[i]);
    }
  }
  out.counts.add(out.outcomes);
  return out;
}

SerialSetSimulator::SerialSetSimulator(const Circuit& circuit,
                                       const Testbench& testbench)
    : circuit_(circuit),
      testbench_(testbench),
      golden_(capture_golden(circuit, testbench.vectors())),
      dff_d_(circuit.dff_drivers()),
      values_(circuit.node_count(), 0),
      state_(circuit.num_dffs(), 0) {
  FEMU_CHECK(testbench.input_width() == circuit.num_inputs(),
             "testbench width ", testbench.input_width(), " != circuit PI ",
             circuit.num_inputs());
}

SetCampaignResult SerialSetSimulator::run(std::span<const SetFault> faults) {
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t num_nodes = circuit_.node_count();

  // Source ordinals: PI nodes -> stimulus bit, DFF nodes -> state bit.
  std::vector<std::uint32_t> ordinal(num_nodes, 0);
  for (std::size_t i = 0; i < circuit_.inputs().size(); ++i) {
    ordinal[circuit_.inputs()[i]] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = 0; i < circuit_.dffs().size(); ++i) {
    ordinal[circuit_.dffs()[i]] = static_cast<std::uint32_t>(i);
  }

  SetCampaignResult result;
  result.faults.assign(faults.begin(), faults.end());
  result.outcomes.assign(faults.size(),
                         FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle});

  const auto settle = [&](std::size_t t, NodeId flip_node) {
    const BitVec& vector = testbench_.vector(t);
    for (NodeId id = 0; id < num_nodes; ++id) {
      bool v;
      const CellType type = circuit_.type(id);
      switch (type) {
        case CellType::kInput:
          v = vector.get(ordinal[id]);
          break;
        case CellType::kDff:
          v = state_[ordinal[id]] != 0;
          break;
        case CellType::kConst0:
          v = false;
          break;
        case CellType::kConst1:
          v = true;
          break;
        default: {
          const auto fanins = circuit_.fanins(id);
          const bool a = values_[fanins[0]] != 0;
          const bool b = fanins.size() > 1 ? values_[fanins[1]] != 0 : a;
          const bool c = fanins.size() > 2 ? values_[fanins[2]] != 0 : a;
          v = eval_cell_bool(type, a, b, c);
          break;
        }
      }
      values_[id] = static_cast<char>(v != (id == flip_node));
    }
  };

  for (std::size_t k = 0; k < faults.size(); ++k) {
    const SetFault& fault = faults[k];
    FEMU_CHECK(fault.cycle < num_cycles, "SET cycle ", fault.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(fault.node < num_nodes &&
                   is_comb_cell(circuit_.type(fault.node)),
               "SET node ", fault.node, " is not a combinational gate");
    FaultOutcome& outcome = result.outcomes[k];

    const BitVec& start = golden_.states[fault.cycle];
    for (std::size_t i = 0; i < state_.size(); ++i) {
      state_[i] = static_cast<char>(start.get(i));
    }

    for (std::size_t t = fault.cycle; t < num_cycles; ++t) {
      settle(t, t == fault.cycle ? fault.node : kInvalidNode);

      bool output_mismatch = false;
      for (std::size_t o = 0; o < circuit_.num_outputs(); ++o) {
        if ((values_[circuit_.outputs()[o].driver] != 0) !=
            golden_.outputs[t].get(o)) {
          output_mismatch = true;
          break;
        }
      }
      if (output_mismatch) {
        outcome.cls = FaultClass::kFailure;
        outcome.detect_cycle = static_cast<std::uint32_t>(t);
        break;
      }

      for (std::size_t i = 0; i < state_.size(); ++i) {
        state_[i] = values_[dff_d_[i]];
      }
      const BitVec& next = golden_.states[t + 1];
      // Latching-window thinning: a sub-full-width pulse latches into each
      // flip-flop only when it overlaps that FF's setup window; FFs it
      // misses latch the golden next-state value (their D deviation was
      // the transient itself, which is gone by the edge).
      if (t == fault.cycle && fault.pulse_q < kSetPulseFull) {
        for (std::size_t i = 0; i < state_.size(); ++i) {
          if (!set_pulse_latches(fault.node, fault.cycle,
                                 static_cast<std::uint32_t>(i),
                                 fault.pulse_q)) {
            state_[i] = static_cast<char>(next.get(i));
          }
        }
      }
      bool state_mismatch = false;
      for (std::size_t i = 0; i < state_.size(); ++i) {
        if ((state_[i] != 0) != next.get(i)) {
          state_mismatch = true;
          break;
        }
      }
      if (!state_mismatch) {
        outcome.cls = FaultClass::kSilent;
        outcome.converge_cycle = static_cast<std::uint32_t>(t + 1);
        break;
      }
    }
  }
  result.counts.add(result.outcomes);
  return result;
}

}  // namespace femu
