#include "fault/mbu.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace femu {

std::vector<MbuFault> adjacent_pair_fault_list(std::size_t num_ffs,
                                               std::size_t num_cycles) {
  FEMU_CHECK(num_ffs >= 2, "adjacent pairs need at least 2 FFs");
  std::vector<MbuFault> faults;
  faults.reserve((num_ffs - 1) * num_cycles);
  for (std::uint32_t cycle = 0; cycle < num_cycles; ++cycle) {
    for (std::uint32_t ff = 0; ff + 1 < num_ffs; ++ff) {
      faults.push_back(MbuFault{{ff, ff + 1}, cycle});
    }
  }
  return faults;
}

std::vector<MbuFault> random_cluster_fault_list(
    std::size_t num_ffs, std::size_t num_cycles, std::size_t cluster_size,
    std::size_t window, std::size_t count, std::uint64_t seed) {
  FEMU_CHECK(cluster_size >= 1 && cluster_size <= num_ffs,
             "cluster size out of range");
  FEMU_CHECK(window >= cluster_size, "window smaller than cluster");
  Rng rng(seed);
  std::vector<MbuFault> faults;
  faults.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    MbuFault fault;
    fault.cycle = static_cast<std::uint32_t>(rng.below(num_cycles));
    const std::size_t span = std::min(window, num_ffs);
    const std::size_t base = rng.below(num_ffs - span + 1);
    // Sample distinct offsets within the locality window.
    while (fault.ff_indices.size() < cluster_size) {
      const std::uint32_t ff =
          static_cast<std::uint32_t>(base + rng.below(span));
      if (std::find(fault.ff_indices.begin(), fault.ff_indices.end(), ff) ==
          fault.ff_indices.end()) {
        fault.ff_indices.push_back(ff);
      }
    }
    std::sort(fault.ff_indices.begin(), fault.ff_indices.end());
    faults.push_back(std::move(fault));
  }
  // Schedule order keeps the grouped engine fast.
  std::stable_sort(faults.begin(), faults.end(),
                   [](const MbuFault& a, const MbuFault& b) {
                     return a.cycle < b.cycle;
                   });
  return faults;
}

MbuFaultSimulator::MbuFaultSimulator(const Circuit& circuit,
                                     const Testbench& testbench)
    : circuit_(circuit),
      testbench_(testbench),
      golden_(capture_golden(circuit, testbench.vectors())),
      sim_(circuit) {
  FEMU_CHECK(testbench.input_width() == circuit.num_inputs(),
             "testbench width ", testbench.input_width(), " != circuit PI ",
             circuit.num_inputs());
}

MbuCampaignResult MbuFaultSimulator::run(std::span<const MbuFault> faults) {
  MbuCampaignResult result;
  result.faults.assign(faults.begin(), faults.end());
  result.outcomes.resize(faults.size());
  for (std::size_t begin = 0; begin < faults.size(); begin += 64) {
    const std::size_t count = std::min<std::size_t>(64, faults.size() - begin);
    run_group(faults.subspan(begin, count),
              std::span<FaultOutcome>(result.outcomes).subspan(begin, count));
  }
  result.counts.add(result.outcomes);
  return result;
}

void MbuFaultSimulator::run_group(std::span<const MbuFault> faults,
                                  std::span<FaultOutcome> outcomes) {
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::uint64_t group_mask =
      faults.size() == 64 ? ~std::uint64_t{0}
                          : ((std::uint64_t{1} << faults.size()) - 1);

  std::uint32_t first_cycle = kNoCycle;
  for (const MbuFault& fault : faults) {
    FEMU_CHECK(fault.cycle < num_cycles, "MBU cycle ", fault.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(!fault.ff_indices.empty(), "MBU with no flip-flops");
    for (const std::uint32_t ff : fault.ff_indices) {
      FEMU_CHECK(ff < circuit_.num_dffs(), "MBU FF ", ff, " out of range");
    }
    first_cycle = std::min(first_cycle, fault.cycle);
  }
  for (auto& outcome : outcomes) {
    outcome = FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle};
  }

  sim_.broadcast_state(golden_.states[first_cycle]);
  std::uint64_t injected = 0;
  std::uint64_t classified = 0;

  for (std::size_t t = first_cycle; t < num_cycles; ++t) {
    for (std::size_t lane = 0; lane < faults.size(); ++lane) {
      if (faults[lane].cycle == t) {
        for (const std::uint32_t ff : faults[lane].ff_indices) {
          sim_.flip_state_bit(ff, static_cast<unsigned>(lane));
        }
        injected |= std::uint64_t{1} << lane;
      }
    }

    sim_.eval(testbench_.vector(t));
    const std::uint64_t mismatch =
        sim_.output_mismatch_lanes(golden_.outputs[t]) & injected &
        ~classified;
    for (std::size_t lane = 0; mismatch != 0 && lane < faults.size();
         ++lane) {
      if ((mismatch >> lane) & 1) {
        outcomes[lane].cls = FaultClass::kFailure;
        outcomes[lane].detect_cycle = static_cast<std::uint32_t>(t);
      }
    }
    classified |= mismatch;

    sim_.step();
    const std::uint64_t differs =
        sim_.state_mismatch_lanes(golden_.states[t + 1]);
    const std::uint64_t converged = injected & ~classified & ~differs;
    for (std::size_t lane = 0; converged != 0 && lane < faults.size();
         ++lane) {
      if ((converged >> lane) & 1) {
        outcomes[lane].cls = FaultClass::kSilent;
        outcomes[lane].converge_cycle = static_cast<std::uint32_t>(t + 1);
      }
    }
    classified |= converged;

    if (classified == group_mask) {
      return;
    }
  }
}

}  // namespace femu
