#include "fault/parallel_faultsim.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <numeric>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/error.h"
#include "common/timer.h"
#include "sim/parallel_sim.h"

namespace femu {

namespace {

// ---- model views -----------------------------------------------------------
//
// One view per fault model, normalizing a lane group for the shared group
// runners. A view answers, per lane: when does the transient enter
// (cycle), how does it enter (inject = state-bit XORs before eval;
// overlay_slot = an instruction-overlay XOR during eval), which structural
// cone bounds its divergence (union_cone), and which bits identify its
// injection site in the sub-program cache key (seed_key). kHasOverlay
// gates the overlay code paths out of the SEU/MBU instantiations entirely;
// kKeyOverNodes picks the cache-key bitset space (FF ids vs node ids).

/// The cone source behind a view: eager materialized matrices or the
/// on-demand oracle (ConePolicy). Both derive bit-identical cones; the
/// group runners never know which one is active.
struct ConeBackend {
  const FanoutCones* eager_ff = nullptr;
  const GateCones* eager_gate = nullptr;
  const ConeOracle* oracle = nullptr;

  void union_ff(std::span<std::uint64_t> mask, std::size_t ff) const {
    if (eager_ff != nullptr) {
      eager_ff->union_into(mask, ff);
    } else {
      oracle->union_into_ff(mask, ff);
    }
  }
  void union_gate(std::span<std::uint64_t> mask, NodeId gate) const {
    if (eager_gate != nullptr) {
      eager_gate->union_into(mask, eager_gate->site_index(gate));
    } else {
      oracle->union_into_gate(mask, gate);
    }
  }
};

struct SeuView {
  std::span<const Fault> faults;
  ConeBackend cones;
  static constexpr bool kHasOverlay = false;
  static constexpr bool kKeyOverNodes = false;

  [[nodiscard]] std::size_t size() const noexcept { return faults.size(); }
  [[nodiscard]] std::uint32_t cycle(std::size_t i) const {
    return faults[i].cycle;
  }
  template <typename Engine>
  void inject(Engine& engine, unsigned lane) const {
    engine.flip_state_bit(faults[lane].ff_index, lane);
  }
  [[nodiscard]] std::uint32_t overlay_slot(std::size_t) const {
    return kInvalidNode;
  }
  void union_cone(std::span<std::uint64_t> mask, std::size_t i) const {
    cones.union_ff(mask, faults[i].ff_index);
  }
  void union_ff_cone(std::span<std::uint64_t> mask, std::size_t ff) const {
    cones.union_ff(mask, ff);
  }
  void seed_key(std::span<std::uint64_t> key, std::size_t i) const {
    const std::uint32_t ff = faults[i].ff_index;
    key[ff >> 6] |= std::uint64_t{1} << (ff & 63);
  }
};

struct MbuView {
  std::span<const MbuFault> faults;
  ConeBackend cones;
  static constexpr bool kHasOverlay = false;
  static constexpr bool kKeyOverNodes = false;

  [[nodiscard]] std::size_t size() const noexcept { return faults.size(); }
  [[nodiscard]] std::uint32_t cycle(std::size_t i) const {
    return faults[i].cycle;
  }
  template <typename Engine>
  void inject(Engine& engine, unsigned lane) const {
    for (const std::uint32_t ff : faults[lane].ff_indices) {
      engine.flip_state_bit(ff, lane);
    }
  }
  [[nodiscard]] std::uint32_t overlay_slot(std::size_t) const {
    return kInvalidNode;
  }
  void union_cone(std::span<std::uint64_t> mask, std::size_t i) const {
    for (const std::uint32_t ff : faults[i].ff_indices) {
      cones.union_ff(mask, ff);
    }
  }
  void union_ff_cone(std::span<std::uint64_t> mask, std::size_t ff) const {
    cones.union_ff(mask, ff);
  }
  void seed_key(std::span<std::uint64_t> key, std::size_t i) const {
    for (const std::uint32_t ff : faults[i].ff_indices) {
      key[ff >> 6] |= std::uint64_t{1} << (ff & 63);
    }
  }
};

struct SetView {
  std::span<const SetFault> faults;
  ConeBackend cones;
  static constexpr bool kHasOverlay = true;
  static constexpr bool kKeyOverNodes = true;

  [[nodiscard]] std::size_t size() const noexcept { return faults.size(); }
  [[nodiscard]] std::uint32_t cycle(std::size_t i) const {
    return faults[i].cycle;
  }
  template <typename Engine>
  void inject(Engine&, unsigned) const {}  // the overlay carries the flip
  [[nodiscard]] std::uint32_t overlay_slot(std::size_t i) const {
    return faults[i].node;  // kernel slot index == node id
  }
  void union_cone(std::span<std::uint64_t> mask, std::size_t i) const {
    cones.union_gate(mask, faults[i].node);
  }
  void union_ff_cone(std::span<std::uint64_t> mask, std::size_t ff) const {
    cones.union_ff(mask, ff);
  }
  void seed_key(std::span<std::uint64_t> key, std::size_t i) const {
    const NodeId node = faults[i].node;
    key[node >> 6] |= std::uint64_t{1} << (node & 63);
  }
};

/// Selects the lane-width-matching overlay vector out of the per-worker
/// scratch (Scratch is deduced — WorkerScratch is private).
template <typename Word, typename Scratch>
[[nodiscard]] auto& overlay_in(Scratch& scratch) {
  if constexpr (std::is_same_v<Word, Word512>) {
    return scratch.overlay512;
  } else if constexpr (std::is_same_v<Word, Word256>) {
    return scratch.overlay256;
  } else {
    return scratch.overlay64;
  }
}

/// Sorts a per-cycle overlay by dest slot and ORs together entries landing
/// on the same gate (several lanes hit by a SET at the same site this
/// cycle), as required by eval_instrs_overlay.
template <typename Word>
void finalize_overlay(std::vector<CompiledKernel::OverlayEntry<Word>>& ov) {
  std::sort(ov.begin(), ov.end(),
            [](const auto& a, const auto& b) { return a.dest < b.dest; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < ov.size(); ++i) {
    if (out != 0 && ov[out - 1].dest == ov[i].dest) {
      ov[out - 1].mask |= ov[i].mask;
    } else {
      ov[out++] = ov[i];
    }
  }
  ov.resize(out);
}

/// Generic schedule sort shared by the three models: a packed (bucket,
/// position) key per fault, counting-sorted when the bucket space is dense
/// (the complete-campaign case), comparison-sorted otherwise.
template <typename KeyOf>
[[nodiscard]] std::vector<std::uint32_t> keyed_schedule_perm(
    std::size_t n, const KeyOf& key_of) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<std::uint64_t> keys(n);
  std::uint64_t max_key = 0;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = key_of(i);
    max_key = std::max(max_key, keys[i]);
  }
  // Counting sort: O(n + buckets), stable by construction. The bucket space
  // is about the size of the complete fault list, but a sparse sample of a
  // huge campaign could make it balloon (4 bytes per bucket), so fall back
  // to a comparison sort when buckets would dwarf the fault count.
  if (max_key <= 16 * keys.size() + 4096) {
    std::vector<std::uint32_t> counts(max_key + 2, 0);
    for (const std::uint64_t k : keys) ++counts[k + 1];
    for (std::size_t k = 1; k < counts.size(); ++k) {
      counts[k] += counts[k - 1];
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      perm[counts[keys[i]]++] = static_cast<std::uint32_t>(i);
    }
  } else {
    std::sort(perm.begin(), perm.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair{keys[x], x} < std::pair{keys[y], y};
              });
  }
  return perm;
}

[[nodiscard]] std::vector<std::uint32_t> identity_perm(std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  return perm;
}

}  // namespace

ParallelFaultSimulator::ParallelFaultSimulator(const Circuit& circuit,
                                               const Testbench& testbench,
                                               CampaignConfig config)
    : circuit_(circuit),
      testbench_(testbench),
      config_(config),
      golden_(capture_golden(circuit, testbench.vectors())) {
  FEMU_CHECK(testbench.input_width() == circuit.num_inputs(),
             "testbench width ", testbench.input_width(), " != circuit PI ",
             circuit.num_inputs());
  FEMU_CHECK(
      config_.backend == SimBackend::kCompiled ||
          config_.lanes == LaneWidth::k64,
      "interpreted backend supports 64 lanes only");
  on_demand_cones_ =
      config_.cone_policy == ConePolicy::kOnDemand ||
      (config_.cone_policy == ConePolicy::kAuto &&
       circuit.node_count() >= CampaignConfig::kOnDemandNodeThreshold);
  words_per_cone_ = (circuit.node_count() + 63) / 64;
  const bool cones_for_eval =
      config_.cone_restricted && config_.backend == SimBackend::kCompiled;
  if (config_.backend == SimBackend::kCompiled) {
    kernel_ = compile_kernel(circuit);
  }
  // The cone-affine schedule only needs the cones, not the kernel, so it
  // works (as a grouping heuristic) even on the interpreted backend.
  if (cones_for_eval || config_.schedule == CampaignSchedule::kConeAffine) {
    std::vector<std::uint32_t> order;
    if (on_demand_cones_) {
      // On-demand mode never materializes cone matrices: the oracle serves
      // unions by DFS and the FF ordering comes from the near-linear
      // anchor-rank pass — campaign construction stays near-linear in the
      // circuit size. The labels are kept so a later SET campaign's site
      // ranking reuses them instead of repeating the sweep.
      oracle_ = std::make_unique<ConeOracle>(circuit);
      next_ff_labels_ = next_ff_labels(circuit);
      order = cone_affine_ff_order_anchor(circuit, next_ff_labels_);
    } else {
      cones_ = std::make_unique<FanoutCones>(circuit);
      order = cone_affine_ff_order(circuit, *cones_, lane_count(config_.lanes),
                                   config_.greedy_order_cap);
    }
    ff_affinity_rank_.resize(order.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      ff_affinity_rank_[order[rank]] = static_cast<std::uint32_t>(rank);
    }
  }
  if (cones_for_eval) {
    slot_trace_ = capture_golden_slots(*kernel_, testbench.vectors());
  }
  // Golden trace + stimuli pre-broadcast once per campaign engine; shared
  // read-only by every worker thread.
  if (config_.lanes == LaneWidth::k64) {
    image64_ = GoldenWordImage<std::uint64_t>(golden_, testbench.vectors());
  } else if (config_.lanes == LaneWidth::k256) {
    image256_ = GoldenWordImage<Word256>(golden_, testbench.vectors());
  } else {
    image512_ = GoldenWordImage<Word512>(golden_, testbench.vectors());
  }
}

void ParallelFaultSimulator::ensure_set_structures() {
  const bool need_cones = (config_.cone_restricted && kernel_ != nullptr) ||
                          config_.schedule == CampaignSchedule::kConeAffine;
  if (!need_cones) {
    return;
  }
  if (on_demand_cones_) {
    // The oracle already answers per-gate cone unions; only the site
    // affinity ranks are missing, and the anchor-label pass derives them
    // without a per-site cone matrix.
    if (config_.schedule == CampaignSchedule::kConeAffine &&
        site_affinity_rank_.empty()) {
      site_affinity_rank_ = cone_affine_site_rank_anchor(
          circuit_, ff_affinity_rank_, next_ff_labels_);
    }
    return;
  }
  if (gate_cones_ != nullptr) {
    return;
  }
  // Whenever need_cones holds, the constructor already built the per-FF
  // cones and the FF affinity ranks (same condition).
  FEMU_CHECK(cones_ != nullptr, "per-FF cones missing");
  gate_cones_ = std::make_unique<GateCones>(circuit_, *cones_);
  if (config_.schedule == CampaignSchedule::kConeAffine) {
    const std::vector<std::uint32_t> order =
        cone_affine_site_order(*gate_cones_, circuit_, ff_affinity_rank_);
    site_affinity_rank_.assign(circuit_.node_count(), 0);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      site_affinity_rank_[gate_cones_->sites()[order[rank]]] =
          static_cast<std::uint32_t>(rank);
    }
  }
}

// ---- schedule permutations -------------------------------------------------

std::vector<std::uint32_t> ParallelFaultSimulator::schedule_permutation(
    std::span<const Fault> faults) const {
  if (config_.schedule == CampaignSchedule::kAsGiven) {
    return identity_perm(faults.size());
  }
  const bool affine = config_.schedule == CampaignSchedule::kConeAffine &&
                      !ff_affinity_rank_.empty();
  // Cone-affine is block-major: the affinity order is a concatenation of
  // lane-width FF blocks with small cone unions; keying by (block, cycle,
  // rank) lays out each block's faults cycle-major and back to back, so a
  // lane group is exactly one block at one cycle — same small cone union,
  // single injection cycle — instead of drifting across block boundaries.
  const std::uint64_t block = lane_count(config_.lanes);
  // The affinity order leads with the partial block (num_ffs mod width), so
  // rank-to-block mapping pads the front to keep later blocks width-aligned.
  const std::uint64_t pad =
      affine ? (block - ff_affinity_rank_.size() % block) % block : 0;
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t num_ffs = circuit_.num_dffs();
  return keyed_schedule_perm(faults.size(), [&](std::size_t i) {
    const Fault& f = faults[i];
    if (affine) {
      // Dense bucket id (block, cycle, rank-within-block): small enough for
      // a counting sort over the whole campaign.
      const std::uint64_t rank = ff_affinity_rank_[f.ff_index] + pad;
      return (rank / block * num_cycles + f.cycle) * block + rank % block;
    }
    return std::uint64_t{f.cycle} * num_ffs + f.ff_index;
  });
}

std::vector<std::uint32_t> ParallelFaultSimulator::schedule_permutation(
    std::span<const MbuFault> faults) const {
  if (config_.schedule == CampaignSchedule::kAsGiven) {
    return identity_perm(faults.size());
  }
  // An MBU spans several FFs; its first (lowest-index) FF stands in for the
  // fault in the affinity key. Approximate — the schedule is a performance
  // knob, never a semantic one.
  const bool affine = config_.schedule == CampaignSchedule::kConeAffine &&
                      !ff_affinity_rank_.empty();
  const std::uint64_t block = lane_count(config_.lanes);
  const std::uint64_t pad =
      affine ? (block - ff_affinity_rank_.size() % block) % block : 0;
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t num_ffs = circuit_.num_dffs();
  return keyed_schedule_perm(faults.size(), [&](std::size_t i) {
    const MbuFault& f = faults[i];
    const std::uint32_t ff = f.ff_indices.front();
    if (affine) {
      const std::uint64_t rank = ff_affinity_rank_[ff] + pad;
      return (rank / block * num_cycles + f.cycle) * block + rank % block;
    }
    return std::uint64_t{f.cycle} * num_ffs + ff;
  });
}

std::vector<std::uint32_t> ParallelFaultSimulator::schedule_permutation(
    std::span<const SetFault> faults) const {
  if (config_.schedule == CampaignSchedule::kAsGiven) {
    return identity_perm(faults.size());
  }
  const bool affine = config_.schedule == CampaignSchedule::kConeAffine &&
                      !site_affinity_rank_.empty();
  const std::uint64_t block = lane_count(config_.lanes);
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t num_nodes = circuit_.node_count();
  return keyed_schedule_perm(faults.size(), [&](std::size_t i) {
    const SetFault& f = faults[i];
    if (affine) {
      const std::uint64_t rank = site_affinity_rank_[f.node];
      return (rank / block * num_cycles + f.cycle) * block + rank % block;
    }
    return std::uint64_t{f.cycle} * num_nodes + f.node;
  });
}

// ---- campaign drivers ------------------------------------------------------

CampaignResult ParallelFaultSimulator::run(std::span<const Fault> faults) {
  WallTimer timer;
  const std::size_t num_cycles = testbench_.num_cycles();
  for (const Fault& fault : faults) {
    FEMU_CHECK(fault.cycle < num_cycles, "fault cycle ", fault.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(fault.ff_index < circuit_.num_dffs(), "fault FF ",
               fault.ff_index, " out of range");
  }

  std::vector<FaultOutcome> outcomes(faults.size());
  const std::vector<std::uint32_t> perm = schedule_permutation(faults);
  run_permuted<Fault>(faults, perm, outcomes, [this](auto group) {
    return SeuView{group, {cones_.get(), nullptr, oracle_.get()}};
  });

  last_run_seconds_ = timer.elapsed_seconds();
  return CampaignResult(std::vector<Fault>(faults.begin(), faults.end()),
                        std::move(outcomes));
}

MbuCampaignResult ParallelFaultSimulator::run_mbu(
    std::span<const MbuFault> faults) {
  WallTimer timer;
  const std::size_t num_cycles = testbench_.num_cycles();
  for (const MbuFault& fault : faults) {
    FEMU_CHECK(fault.cycle < num_cycles, "MBU cycle ", fault.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(!fault.ff_indices.empty(), "MBU with no flip-flops");
    for (const std::uint32_t ff : fault.ff_indices) {
      FEMU_CHECK(ff < circuit_.num_dffs(), "MBU FF ", ff, " out of range");
    }
  }

  MbuCampaignResult result;
  result.faults.assign(faults.begin(), faults.end());
  result.outcomes.resize(faults.size());
  const std::vector<std::uint32_t> perm = schedule_permutation(faults);
  run_permuted<MbuFault>(faults, perm, result.outcomes, [this](auto group) {
    return MbuView{group, {cones_.get(), nullptr, oracle_.get()}};
  });
  result.counts.add(result.outcomes);

  last_run_seconds_ = timer.elapsed_seconds();
  return result;
}

SetCampaignResult ParallelFaultSimulator::run_set(
    std::span<const SetFault> faults) {
  WallTimer timer;
  FEMU_CHECK(kernel_ != nullptr,
             "SET campaigns require the compiled backend "
             "(the injection overlay is an instruction-stream mechanism)");
  const std::size_t num_cycles = testbench_.num_cycles();
  for (const SetFault& fault : faults) {
    FEMU_CHECK(fault.cycle < num_cycles, "SET cycle ", fault.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(fault.node < circuit_.node_count() &&
                   is_comb_cell(circuit_.type(fault.node)),
               "SET node ", fault.node, " is not a combinational gate");
  }
  ensure_set_structures();

  SetCampaignResult result;
  result.faults.assign(faults.begin(), faults.end());
  result.outcomes.resize(faults.size());
  const std::vector<std::uint32_t> perm = schedule_permutation(faults);
  run_permuted<SetFault>(faults, perm, result.outcomes, [this](auto group) {
    return SetView{group, {cones_.get(), gate_cones_.get(), oracle_.get()}};
  });
  result.counts.add(result.outcomes);

  last_run_seconds_ = timer.elapsed_seconds();
  return result;
}

template <typename FaultT, typename MakeView>
void ParallelFaultSimulator::run_permuted(std::span<const FaultT> faults,
                                          std::span<const std::uint32_t> perm,
                                          std::span<FaultOutcome> outcomes,
                                          const MakeView& make_view) {
  using View = std::invoke_result_t<MakeView, std::span<const FaultT>>;

  // Run over a permuted view, scatter outcomes back through the inverse
  // permutation so results align with caller order.
  bool permuted = false;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) {
      permuted = true;
      break;
    }
  }
  std::vector<FaultT> scheduled;
  std::vector<FaultOutcome> scheduled_outcomes;
  std::span<const FaultT> run_faults = faults;
  std::span<FaultOutcome> run_outcomes = outcomes;
  if (permuted) {
    scheduled.reserve(faults.size());
    for (const std::uint32_t idx : perm) scheduled.push_back(faults[idx]);
    scheduled_outcomes.resize(faults.size());
    run_faults = scheduled;
    run_outcomes = scheduled_outcomes;
  }

  const std::size_t width = lane_count(config_.lanes);
  const std::size_t num_groups = (faults.size() + width - 1) / width;
  unsigned workers = config_.num_threads != 0
                         ? config_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(num_groups, 1)));
  last_run_threads_ = workers;

  const bool cone = config_.cone_restricted && kernel_ != nullptr;
  if (config_.lanes == LaneWidth::k64 && kernel_) {
    const auto make_engine = [this] {
      return LaneEngine<std::uint64_t>(kernel_);
    };
    const auto run_group = [&](LaneEngine<std::uint64_t>& engine,
                               std::span<const FaultT> group_faults,
                               std::span<FaultOutcome> group_outcomes,
                               WorkerScratch& scratch) {
      const View view = make_view(group_faults);
      if (cone) {
        run_group_cone(engine, image64_, view, group_outcomes, scratch);
      } else {
        run_group_full(engine, image64_, view, group_outcomes, scratch);
      }
    };
    run_sharded<std::uint64_t, FaultT>(make_engine, run_group, run_faults,
                                       run_outcomes, workers);
  } else if (config_.lanes == LaneWidth::k64) {
    // Interpreted backend: full-eval only, and no instruction stream to
    // overlay — the SET driver rejects this configuration up front.
    if constexpr (!View::kHasOverlay) {
      const auto make_engine = [this] {
        return ParallelSimulator(circuit_, SimBackend::kInterpreted);
      };
      const auto run_group = [&](ParallelSimulator& engine,
                                 std::span<const FaultT> group_faults,
                                 std::span<FaultOutcome> group_outcomes,
                                 WorkerScratch& scratch) {
        run_group_full(engine, image64_, make_view(group_faults),
                       group_outcomes, scratch);
      };
      run_sharded<std::uint64_t, FaultT>(make_engine, run_group, run_faults,
                                         run_outcomes, workers);
    } else {
      FEMU_CHECK(false, "overlay models require the compiled backend");
    }
  } else {
    const auto run_wide = [&]<typename Word>(
                              const GoldenWordImage<Word>& image) {
      const auto make_engine = [this] { return LaneEngine<Word>(kernel_); };
      const auto run_group = [&](LaneEngine<Word>& engine,
                                 std::span<const FaultT> group_faults,
                                 std::span<FaultOutcome> group_outcomes,
                                 WorkerScratch& scratch) {
        const View view = make_view(group_faults);
        if (cone) {
          run_group_cone(engine, image, view, group_outcomes, scratch);
        } else {
          run_group_full(engine, image, view, group_outcomes, scratch);
        }
      };
      run_sharded<Word, FaultT>(make_engine, run_group, run_faults,
                                run_outcomes, workers);
    };
    if (config_.lanes == LaneWidth::k256) {
      run_wide(image256_);
    } else {
      run_wide(image512_);
    }
  }

  if (permuted) {
    for (std::size_t i = 0; i < perm.size(); ++i) {
      outcomes[perm[i]] = scheduled_outcomes[i];
    }
  }
}

template <typename Word, typename FaultT, typename MakeEngine,
          typename RunGroup>
void ParallelFaultSimulator::run_sharded(const MakeEngine& make_engine,
                                         const RunGroup& run_group,
                                         std::span<const FaultT> faults,
                                         std::span<FaultOutcome> outcomes,
                                         unsigned num_workers) {
  const std::size_t width = LaneTraits<Word>::kLanes;
  const std::size_t num_groups = (faults.size() + width - 1) / width;

  const auto group_span = [&](std::size_t g) {
    const std::size_t begin = g * width;
    const std::size_t count = std::min(width, faults.size() - begin);
    return std::pair{faults.subspan(begin, count),
                     outcomes.subspan(begin, count)};
  };

  if (num_workers <= 1 || num_groups <= 1) {
    auto engine = make_engine();
    WorkerScratch scratch;
    for (std::size_t g = 0; g < num_groups; ++g) {
      const auto [group_faults, group_outcomes] = group_span(g);
      run_group(engine, group_faults, group_outcomes, scratch);
    }
    last_run_eval_cycles_ = scratch.eval_cycles;
    last_run_eval_instrs_ = scratch.eval_instrs;
    last_run_eval_slot_bytes_ = scratch.eval_slot_bytes;
    last_run_narrowings_ = scratch.narrowings;
    return;
  }

  // Work-stealing pool: each worker owns one engine and one scratch (sharing
  // the read-only kernel, cones, slot trace and golden images) and pulls
  // group indices from an atomic counter. Each group writes a disjoint
  // outcome slice, so the result is identical for any worker count or
  // scheduling order.
  std::atomic<std::size_t> next_group{0};
  std::atomic<std::uint64_t> total_eval_cycles{0};
  std::atomic<std::uint64_t> total_eval_instrs{0};
  std::atomic<std::uint64_t> total_eval_slot_bytes{0};
  std::atomic<std::uint64_t> total_narrowings{0};
  const auto worker = [&] {
    auto engine = make_engine();
    WorkerScratch scratch;
    for (std::size_t g = next_group.fetch_add(1, std::memory_order_relaxed);
         g < num_groups;
         g = next_group.fetch_add(1, std::memory_order_relaxed)) {
      const auto [group_faults, group_outcomes] = group_span(g);
      run_group(engine, group_faults, group_outcomes, scratch);
    }
    total_eval_cycles.fetch_add(scratch.eval_cycles,
                                std::memory_order_relaxed);
    total_eval_instrs.fetch_add(scratch.eval_instrs,
                                std::memory_order_relaxed);
    total_eval_slot_bytes.fetch_add(scratch.eval_slot_bytes,
                                    std::memory_order_relaxed);
    total_narrowings.fetch_add(scratch.narrowings, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(num_workers - 1);
  for (unsigned i = 1; i < num_workers; ++i) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread is worker 0
  for (auto& t : pool) {
    t.join();
  }
  last_run_eval_cycles_ = total_eval_cycles.load();
  last_run_eval_instrs_ = total_eval_instrs.load();
  last_run_eval_slot_bytes_ = total_eval_slot_bytes.load();
  last_run_narrowings_ = total_narrowings.load();
}

template <typename View>
void ParallelFaultSimulator::sort_group_order(const View& view,
                                              WorkerScratch& scratch) const {
  // Injection schedule sorted by cycle: injections then advance a cursor
  // instead of rescanning all lanes per cycle, and the cursor's head is the
  // next injection cycle the fast-forward path jumps to. The index vector is
  // per-worker scratch — reused across groups, no per-group allocation.
  scratch.order.resize(view.size());
  std::iota(scratch.order.begin(), scratch.order.end(), 0u);
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              return view.cycle(x) < view.cycle(y);
            });
}

template <typename Engine, typename Word, typename View>
void ParallelFaultSimulator::run_group_full(Engine& engine,
                                            const GoldenWordImage<Word>& image,
                                            const View& view,
                                            std::span<FaultOutcome> outcomes,
                                            WorkerScratch& scratch) const {
  using T = LaneTraits<Word>;
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t program_size =
      kernel_ ? kernel_->program().size() : circuit_.num_gates();
  const std::size_t slot_bytes = circuit_.node_count() * sizeof(Word);
  const std::size_t group_size = view.size();
  const Word group_mask = T::first_n(group_size);

  sort_group_order(view, scratch);
  const std::vector<std::uint32_t>& order = scratch.order;
  std::size_t cursor = 0;

  // Default: latent (overwritten on detection/convergence below).
  for (auto& outcome : outcomes) {
    outcome = FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle};
  }

  const std::uint32_t first_cycle = view.cycle(order.front());
  engine.broadcast_state(golden_.states[first_cycle]);
  Word injected = T::zero();
  Word classified = T::zero();
  [[maybe_unused]] auto& overlay = overlay_in<Word>(scratch);

  for (std::size_t t = first_cycle; t < num_cycles; ++t) {
    // Inject the lanes whose cycle has arrived. SEU/MBU flips happen in
    // state(t), before cycle t evaluates — the upset hits the new state;
    // a SET lane instead contributes an overlay entry so the flip lands
    // inline during this cycle's evaluation.
    if constexpr (View::kHasOverlay) {
      overlay.clear();
    }
    while (cursor < order.size() && view.cycle(order[cursor]) == t) {
      const std::uint32_t lane = order[cursor];
      view.inject(engine, lane);
      if constexpr (View::kHasOverlay) {
        overlay.push_back({view.overlay_slot(lane), T::lane_bit(lane)});
      }
      injected |= T::lane_bit(lane);
      ++cursor;
    }

    if constexpr (View::kHasOverlay) {
      finalize_overlay(overlay);
      engine.eval_words_overlay(image.inputs(t), overlay);
    } else {
      engine.eval_words(image.inputs(t));
    }
    ++scratch.eval_cycles;
    scratch.eval_instrs += program_size;
    scratch.eval_slot_bytes += slot_bytes;

    const Word mismatch =
        engine.output_mismatch_lanes(image.outputs(t)) & injected &
        ~classified;
    if (T::any(mismatch)) {
      for (std::size_t lane = 0; lane < group_size; ++lane) {
        if (T::test(mismatch, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kFailure;
          outcomes[lane].detect_cycle = static_cast<std::uint32_t>(t);
        }
      }
      classified |= mismatch;
    }

    engine.step();

    const Word differs = engine.state_mismatch_lanes(image.states(t + 1));
    const Word converged = injected & ~classified & ~differs;
    if (T::any(converged)) {
      for (std::size_t lane = 0; lane < group_size; ++lane) {
        if (T::test(converged, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kSilent;
          outcomes[lane].converge_cycle = static_cast<std::uint32_t>(t + 1);
        }
      }
      classified |= converged;
    }

    if (classified == group_mask) {
      return;  // every lane graded — skip the testbench tail entirely
    }

    // Fast-forward: when every already-injected lane is graded, the pending
    // lanes are bit-identical to the golden machine, so jump straight to the
    // next injection cycle (the cursor head) from the golden state image.
    if (!T::any(injected & ~classified) && cursor < order.size()) {
      const std::uint32_t next_cycle = view.cycle(order[cursor]);
      if (next_cycle > t + 1) {
        engine.broadcast_state(golden_.states[next_cycle]);
        t = next_cycle - 1;  // loop increment lands on next_cycle
      }
    }
  }
  // Lanes never classified stay latent (their final state differs and no
  // output ever deviated).
}

template <typename Word, typename View>
void ParallelFaultSimulator::run_group_cone(LaneEngine<Word>& engine,
                                            const GoldenWordImage<Word>& image,
                                            const View& view,
                                            std::span<FaultOutcome> outcomes,
                                            WorkerScratch& scratch) const {
  using T = LaneTraits<Word>;
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t group_size = view.size();
  const Word group_mask = T::first_n(group_size);

  sort_group_order(view, scratch);
  const std::vector<std::uint32_t>& order = scratch.order;
  std::size_t cursor = 0;

  for (auto& outcome : outcomes) {
    outcome = FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle};
  }

  // Initial cone: union of every group fault's cone. Under the block-major
  // cone-affine schedule consecutive groups carry the same site block, so
  // the derived initial sub-program is cached in the worker scratch keyed
  // on the group's site set and rebuilt only when the block changes.
  const std::size_t ff_words = (circuit_.num_dffs() + 63) / 64;
  const std::size_t lane_words = (T::kLanes + 63) / 64;
  const std::size_t key_words =
      View::kKeyOverNodes ? words_per_cone_ : ff_words;
  std::vector<std::uint64_t>& group_key = scratch.group_key;
  group_key.assign(key_words, 0);
  for (std::size_t i = 0; i < group_size; ++i) {
    view.seed_key(group_key, i);
  }
  if (!scratch.initial_valid || group_key != scratch.cached_key) {
    scratch.cached_key = group_key;
    scratch.initial_mask.assign(words_per_cone_, 0);
    for (std::size_t i = 0; i < group_size; ++i) {
      view.union_cone(scratch.initial_mask, i);
    }
    kernel_->build_subprogram(scratch.initial_mask, scratch.initial_sp);
    scratch.initial_valid = true;
  }
  std::vector<std::uint64_t>& mask = scratch.cone_mask;
  mask = scratch.initial_mask;
  const CompiledKernel::ConeSubProgram* sp = &scratch.initial_sp;
  unsigned narrow_buf = 0;  // next narrow_sp buffer to write (ping-pong)

  // The sub-program is re-derived (narrowed) at checkpoints — whenever any
  // lane classified since the last checkpoint, and every kNarrowInterval
  // cycles — from what is *currently* diverged: the cones of the flip-flops
  // whose lane state differs from golden in any active lane, plus the seed
  // cones of lanes still waiting to inject (tracked as per-lane tail bits
  // in the fingerprint — a waiting SET lane's bound is a gate cone no FF
  // bit can express). Divergence can only move inside the structural
  // closure, so the re-derived mask is always a subset of the current one
  // and the sub-program only ever shrinks; latent faults whose divergence
  // parks in a few dead-end flip-flops stop paying for the full injection
  // cone. The fingerprint is remembered between checkpoints: once the tail
  // stabilises (same FFs diverged, typical for latent survivors) the
  // checkpoint is a bitset compare, with no union or derivation work.
  std::size_t narrow_below = group_size - 1;
  constexpr std::size_t kNarrowInterval = 4;
  std::vector<std::uint64_t>& next_mask = scratch.narrow_mask;
  std::vector<std::uint64_t>& diverged = scratch.diverged_ffs;
  // Seed with every lane waiting — the bound the initial sub-program was
  // derived from.
  diverged.assign(ff_words + lane_words, 0);
  for (std::size_t lane = 0; lane < group_size; ++lane) {
    diverged[ff_words + (lane >> 6)] |= std::uint64_t{1} << (lane & 63);
  }

  const std::uint32_t first_cycle = view.cycle(order.front());
  engine.broadcast_state(golden_.states[first_cycle]);
  Word injected = T::zero();
  Word classified = T::zero();
  std::size_t next_narrow_check = first_cycle + kNarrowInterval;
  [[maybe_unused]] auto& overlay = overlay_in<Word>(scratch);

  for (std::size_t t = first_cycle; t < num_cycles; ++t) {
    if constexpr (View::kHasOverlay) {
      overlay.clear();
    }
    while (cursor < order.size() && view.cycle(order[cursor]) == t) {
      const std::uint32_t lane = order[cursor];
      view.inject(engine, lane);
      if constexpr (View::kHasOverlay) {
        // Overlay destinations live in the sub-program's arena space; a
        // site the (narrowed) sub-program no longer computes is dropped —
        // its transient provably cannot affect what is still evaluated.
        const std::uint32_t s = view.overlay_slot(lane);
        if (sp->in_cone(s)) {
          overlay.push_back({sp->local_of_slot[s], T::lane_bit(lane)});
        }
      }
      injected |= T::lane_bit(lane);
      ++cursor;
    }

    if constexpr (View::kHasOverlay) {
      finalize_overlay(overlay);
      engine.eval_cone_overlay(*sp, slot_trace_.at(t), overlay);
    } else {
      engine.eval_cone(*sp, slot_trace_.at(t));
    }
    ++scratch.eval_cycles;
    scratch.eval_instrs += sp->instrs.size();
    scratch.eval_slot_bytes += sp->arena_slots * sizeof(Word);

    const Word mismatch =
        engine.output_mismatch_lanes_cone(*sp, image.outputs(t)) & injected &
        ~classified;
    if (T::any(mismatch)) {
      for (std::size_t lane = 0; lane < group_size; ++lane) {
        if (T::test(mismatch, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kFailure;
          outcomes[lane].detect_cycle = static_cast<std::uint32_t>(t);
        }
      }
      classified |= mismatch;
    }

    const Word differs = engine.step_cone_mismatch(*sp, image.states(t + 1));
    const Word converged = injected & ~classified & ~differs;
    if (T::any(converged)) {
      for (std::size_t lane = 0; lane < group_size; ++lane) {
        if (T::test(converged, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kSilent;
          outcomes[lane].converge_cycle = static_cast<std::uint32_t>(t + 1);
        }
      }
      classified |= converged;
    }

    if (classified == group_mask) {
      return;
    }

    // Narrowing checkpoint: whenever any lane classified since the last
    // checkpoint (cheap now that re-derivation filters the current
    // sub-program, and crucial during the post-injection burst when big
    // cones shed most of their lanes), and every kNarrowInterval cycles to
    // catch divergence that shrinks without classifying.
    const std::size_t active = group_size - T::count(classified);
    if (active <= narrow_below || t + 1 >= next_narrow_check) {
      narrow_below = active - 1;
      next_narrow_check = t + 1 + kNarrowInterval;
      // Current divergence fingerprint: lanes still waiting to inject
      // contribute their tail bit, active lanes contribute every cone FF
      // whose state word differs from golden (only cone FFs can diverge).
      std::vector<std::uint64_t>& now = scratch.diverged_now;
      now.assign(ff_words + lane_words, 0);
      for (std::size_t lane = 0; lane < group_size; ++lane) {
        if (!T::test(injected, static_cast<unsigned>(lane))) {
          now[ff_words + (lane >> 6)] |= std::uint64_t{1} << (lane & 63);
        }
      }
      const Word active_lanes = injected & ~classified;
      const auto golden_state = image.states(t + 1);
      for (const std::uint32_t i : sp->dff_indices) {
        if (T::any((engine.state_word(i) ^ golden_state[i]) & active_lanes)) {
          now[i >> 6] |= std::uint64_t{1} << (i & 63);
        }
      }
      if (now != diverged) {
        // Union re-derivation only pays off when the set strictly shrank.
        // When divergence *spreads*, cone closure guarantees the current
        // mask still covers it (a newly diverged FF is a cone member, and a
        // cone member's own cone is inside the cone), so tracking the new
        // set without any union work is exact.
        bool maybe_shrunk = true;
        for (std::size_t w = 0; w < ff_words + lane_words; ++w) {
          if ((now[w] & ~diverged[w]) != 0) {
            maybe_shrunk = false;
            break;
          }
        }
        diverged = now;
        if (maybe_shrunk) {
          next_mask.assign(mask.size(), 0);
          for (std::size_t w = 0; w < ff_words; ++w) {
            std::uint64_t bits = diverged[w];
            while (bits != 0) {
              const std::size_t ff =
                  w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
              bits &= bits - 1;
              view.union_ff_cone(next_mask, ff);
            }
          }
          for (std::size_t w = 0; w < lane_words; ++w) {
            std::uint64_t bits = diverged[ff_words + w];
            while (bits != 0) {
              const std::size_t lane =
                  w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
              bits &= bits - 1;
              view.union_cone(next_mask, lane);
            }
          }
          if (next_mask != mask) {
            mask.swap(next_mask);
            kernel_->build_subprogram(mask, scratch.narrow_sp[narrow_buf],
                                      sp);
            sp = &scratch.narrow_sp[narrow_buf];
            narrow_buf ^= 1u;
            ++scratch.narrowings;
          }
        }
      }
    }

    if (!T::any(injected & ~classified) && cursor < order.size()) {
      const std::uint32_t next_cycle = view.cycle(order[cursor]);
      if (next_cycle > t + 1) {
        engine.broadcast_state(golden_.states[next_cycle]);
        t = next_cycle - 1;
      }
    }
  }
}

}  // namespace femu
