#include "fault/parallel_faultsim.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "common/error.h"
#include "common/timer.h"
#include "sim/parallel_sim.h"

namespace femu {

ParallelFaultSimulator::ParallelFaultSimulator(const Circuit& circuit,
                                               const Testbench& testbench,
                                               CampaignConfig config)
    : circuit_(circuit),
      testbench_(testbench),
      config_(config),
      golden_(capture_golden(circuit, testbench.vectors())) {
  FEMU_CHECK(testbench.input_width() == circuit.num_inputs(),
             "testbench width ", testbench.input_width(), " != circuit PI ",
             circuit.num_inputs());
  FEMU_CHECK(
      config_.backend == SimBackend::kCompiled ||
          config_.lanes == LaneWidth::k64,
      "interpreted backend supports 64 lanes only");
  if (config_.backend == SimBackend::kCompiled) {
    kernel_ = compile_kernel(circuit);
  }
  // Golden trace pre-broadcast once per campaign engine; shared read-only by
  // every worker thread.
  if (config_.lanes == LaneWidth::k64) {
    image64_ = GoldenWordImage<std::uint64_t>(golden_);
  } else {
    image256_ = GoldenWordImage<Word256>(golden_);
  }
}

CampaignResult ParallelFaultSimulator::run(std::span<const Fault> faults) {
  WallTimer timer;
  const std::size_t num_cycles = testbench_.num_cycles();
  for (const Fault& fault : faults) {
    FEMU_CHECK(fault.cycle < num_cycles, "fault cycle ", fault.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(fault.ff_index < circuit_.num_dffs(), "fault FF ",
               fault.ff_index, " out of range");
  }

  std::vector<FaultOutcome> outcomes(faults.size());
  const std::size_t width = lane_count(config_.lanes);
  const std::size_t num_groups = (faults.size() + width - 1) / width;
  unsigned workers = config_.num_threads != 0
                         ? config_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(num_groups, 1)));
  last_run_threads_ = workers;

  if (config_.lanes == LaneWidth::k64 && kernel_) {
    const auto make_engine = [this] {
      return LaneEngine<std::uint64_t>(kernel_);
    };
    last_run_eval_cycles_ = run_sharded<std::uint64_t>(
        image64_, make_engine, faults, std::span<FaultOutcome>(outcomes),
        workers);
  } else if (config_.lanes == LaneWidth::k64) {
    const auto make_engine = [this] {
      return ParallelSimulator(circuit_, SimBackend::kInterpreted);
    };
    last_run_eval_cycles_ = run_sharded<std::uint64_t>(
        image64_, make_engine, faults, std::span<FaultOutcome>(outcomes),
        workers);
  } else {
    const auto make_engine = [this] { return LaneEngine<Word256>(kernel_); };
    last_run_eval_cycles_ = run_sharded<Word256>(
        image256_, make_engine, faults, std::span<FaultOutcome>(outcomes),
        workers);
  }

  last_run_seconds_ = timer.elapsed_seconds();
  return CampaignResult(std::vector<Fault>(faults.begin(), faults.end()),
                        std::move(outcomes));
}

template <typename Word, typename MakeEngine>
std::uint64_t ParallelFaultSimulator::run_sharded(
    const GoldenWordImage<Word>& image, const MakeEngine& make_engine,
    std::span<const Fault> faults, std::span<FaultOutcome> outcomes,
    unsigned num_workers) {
  const std::size_t width = LaneTraits<Word>::kLanes;
  const std::size_t num_groups = (faults.size() + width - 1) / width;

  const auto group_span = [&](std::size_t g) {
    const std::size_t begin = g * width;
    const std::size_t count = std::min(width, faults.size() - begin);
    return std::pair{faults.subspan(begin, count),
                     outcomes.subspan(begin, count)};
  };

  if (num_workers <= 1 || num_groups <= 1) {
    auto engine = make_engine();
    std::uint64_t eval_cycles = 0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      const auto [group_faults, group_outcomes] = group_span(g);
      run_group(engine, image, group_faults, group_outcomes, eval_cycles);
    }
    return eval_cycles;
  }

  // Work-stealing pool: each worker owns one engine (sharing the read-only
  // kernel + golden images) and pulls group indices from an atomic counter.
  // Each group writes a disjoint outcome slice, so the result is identical
  // for any worker count or scheduling order.
  std::atomic<std::size_t> next_group{0};
  std::atomic<std::uint64_t> total_eval_cycles{0};
  const auto worker = [&] {
    auto engine = make_engine();
    std::uint64_t eval_cycles = 0;
    for (std::size_t g = next_group.fetch_add(1, std::memory_order_relaxed);
         g < num_groups;
         g = next_group.fetch_add(1, std::memory_order_relaxed)) {
      const auto [group_faults, group_outcomes] = group_span(g);
      run_group(engine, image, group_faults, group_outcomes, eval_cycles);
    }
    total_eval_cycles.fetch_add(eval_cycles, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(num_workers - 1);
  for (unsigned i = 1; i < num_workers; ++i) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread is worker 0
  for (auto& t : pool) {
    t.join();
  }
  return total_eval_cycles.load();
}

template <typename Engine, typename Word>
void ParallelFaultSimulator::run_group(Engine& engine,
                                       const GoldenWordImage<Word>& image,
                                       std::span<const Fault> faults,
                                       std::span<FaultOutcome> outcomes,
                                       std::uint64_t& eval_cycles) const {
  using T = LaneTraits<Word>;
  const std::size_t num_cycles = testbench_.num_cycles();
  const Word group_mask = T::first_n(faults.size());

  // Injection schedule sorted by cycle: injections then advance a cursor
  // instead of rescanning all lanes per cycle, and the cursor's head is the
  // next injection cycle the fast-forward path jumps to.
  std::vector<std::uint32_t> order(faults.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    return faults[x].cycle < faults[y].cycle;
  });
  std::size_t cursor = 0;

  // Default: latent (overwritten on detection/convergence below).
  for (auto& outcome : outcomes) {
    outcome = FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle};
  }

  const std::uint32_t first_cycle = faults[order.front()].cycle;
  engine.broadcast_state(golden_.states[first_cycle]);
  Word injected = T::zero();
  Word classified = T::zero();

  for (std::size_t t = first_cycle; t < num_cycles; ++t) {
    // Inject the lanes whose cycle has arrived (flip happens in state(t),
    // before cycle t evaluates — the SEU hits the new state).
    while (cursor < order.size() && faults[order[cursor]].cycle == t) {
      const std::uint32_t lane = order[cursor];
      engine.flip_state_bit(faults[lane].ff_index, lane);
      injected |= T::lane_bit(lane);
      ++cursor;
    }

    engine.eval(testbench_.vector(t));
    ++eval_cycles;

    const Word mismatch =
        engine.output_mismatch_lanes(image.outputs(t)) & injected &
        ~classified;
    if (T::any(mismatch)) {
      for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        if (T::test(mismatch, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kFailure;
          outcomes[lane].detect_cycle = static_cast<std::uint32_t>(t);
        }
      }
      classified |= mismatch;
    }

    engine.step();

    const Word differs = engine.state_mismatch_lanes(image.states(t + 1));
    const Word converged = injected & ~classified & ~differs;
    if (T::any(converged)) {
      for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        if (T::test(converged, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kSilent;
          outcomes[lane].converge_cycle = static_cast<std::uint32_t>(t + 1);
        }
      }
      classified |= converged;
    }

    if (classified == group_mask) {
      return;  // every lane graded — skip the testbench tail entirely
    }

    // Fast-forward: when every already-injected lane is graded, the pending
    // lanes are bit-identical to the golden machine, so jump straight to the
    // next injection cycle (the cursor head) from the golden state image.
    if (!T::any(injected & ~classified) && cursor < order.size()) {
      const std::uint32_t next_cycle = faults[order[cursor]].cycle;
      if (next_cycle > t + 1) {
        engine.broadcast_state(golden_.states[next_cycle]);
        t = next_cycle - 1;  // loop increment lands on next_cycle
      }
    }
  }
  // Lanes never classified stay latent (their final state differs and no
  // output ever deviated).
}

}  // namespace femu
