#include "fault/parallel_faultsim.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <numeric>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/error.h"
#include "common/timer.h"
#include "fault/artifact_cache.h"
#include "fault/journal.h"
#include "sim/kernel_opt.h"
#include "sim/parallel_sim.h"

namespace femu {

namespace {

// The engine core below is model-agnostic: every model-specific question —
// injection mechanism, overlay op and cadence, cone space, schedule key,
// retirement rule — is answered by the FaultModelTraits descriptor through
// a ModelView (fault/model_traits.h). The group runners specialize per
// model purely via `if constexpr` on the view's flags, so SEU/MBU
// instantiations carry no overlay, thinning or every-cycle code at all.

/// Selects the lane-width-matching overlay vector out of the per-worker
/// scratch (Scratch is deduced — WorkerScratch is private).
template <typename Word, typename Scratch>
[[nodiscard]] auto& overlay_in(Scratch& scratch) {
  if constexpr (std::is_same_v<Word, Word512>) {
    return scratch.overlay512;
  } else if constexpr (std::is_same_v<Word, Word256>) {
    return scratch.overlay256;
  } else {
    return scratch.overlay64;
  }
}

/// Selects the lane-width-matching latch-suppression vector.
template <typename Word, typename Scratch>
[[nodiscard]] auto& thin_in(Scratch& scratch) {
  if constexpr (std::is_same_v<Word, Word512>) {
    return scratch.thin512;
  } else if constexpr (std::is_same_v<Word, Word256>) {
    return scratch.thin256;
  } else {
    return scratch.thin64;
  }
}

/// Sorts an overlay by dest slot and composes entries landing on the same
/// gate (several lanes faulting the same site this cycle — possibly with
/// different ops), as required by eval_instrs_overlay: applying (k1,f1)
/// then (k2,f2) folds into the single masked update (k1&k2, (f1&k2)^f2).
template <typename Word>
void finalize_overlay(std::vector<CompiledKernel::OverlayEntry<Word>>& ov) {
  std::sort(ov.begin(), ov.end(),
            [](const auto& a, const auto& b) { return a.dest < b.dest; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < ov.size(); ++i) {
    if (out != 0 && ov[out - 1].dest == ov[i].dest) {
      ov[out - 1].flip = (ov[out - 1].flip & ov[i].keep) ^ ov[i].flip;
      ov[out - 1].keep &= ov[i].keep;
    } else {
      ov[out++] = ov[i];
    }
  }
  ov.resize(out);
}

/// Generic schedule sort shared by every model: a packed (bucket, position)
/// key per fault, counting-sorted when the bucket space is dense (the
/// complete-campaign case), comparison-sorted otherwise.
template <typename KeyOf>
[[nodiscard]] std::vector<std::uint32_t> keyed_schedule_perm(
    std::size_t n, const KeyOf& key_of) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<std::uint64_t> keys(n);
  std::uint64_t max_key = 0;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = key_of(i);
    max_key = std::max(max_key, keys[i]);
  }
  // Counting sort: O(n + buckets), stable by construction. The bucket space
  // is about the size of the complete fault list, but a sparse sample of a
  // huge campaign could make it balloon (4 bytes per bucket), so fall back
  // to a comparison sort when buckets would dwarf the fault count.
  if (max_key <= 16 * keys.size() + 4096) {
    std::vector<std::uint32_t> counts(max_key + 2, 0);
    for (const std::uint64_t k : keys) ++counts[k + 1];
    for (std::size_t k = 1; k < counts.size(); ++k) {
      counts[k] += counts[k - 1];
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      perm[counts[keys[i]]++] = static_cast<std::uint32_t>(i);
    }
  } else {
    std::sort(perm.begin(), perm.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair{keys[x], x} < std::pair{keys[y], y};
              });
  }
  return perm;
}

[[nodiscard]] std::vector<std::uint32_t> identity_perm(std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  return perm;
}

/// One worker's compiled engines, one per lane-width tier, constructed
/// lazily on the first group of that tier the worker claims. Under kFixed
/// exactly one tier ever materializes (same cost as before); an adaptive
/// plan's tail groups bring up the narrower tiers only in workers that
/// actually run them.
struct LaneEngineSet {
  std::optional<LaneEngine<std::uint64_t>> e64;
  std::optional<LaneEngine<Word256>> e256;
  std::optional<LaneEngine<Word512>> e512;
};

}  // namespace

ParallelFaultSimulator::ParallelFaultSimulator(const Circuit& circuit,
                                               const Testbench& testbench,
                                               CampaignConfig config)
    : circuit_(circuit), testbench_(testbench), config_(config) {
  FEMU_CHECK(testbench.input_width() == circuit.num_inputs(),
             "testbench width ", testbench.input_width(), " != circuit PI ",
             circuit.num_inputs());
  FEMU_CHECK(
      config_.backend == SimBackend::kCompiled ||
          config_.lanes == LaneWidth::k64,
      "interpreted backend supports 64 lanes only");
  on_demand_cones_ =
      config_.cone_policy == ConePolicy::kOnDemand ||
      (config_.cone_policy == ConePolicy::kAuto &&
       circuit.node_count() >= CampaignConfig::kOnDemandNodeThreshold);
  words_per_cone_ = (circuit.node_count() + 63) / 64;
  const bool cones_for_eval =
      config_.cone_restricted && config_.backend == SimBackend::kCompiled;
  const bool need_cones =
      cones_for_eval || config_.schedule == CampaignSchedule::kConeAffine;
  // Construction parallelism follows the campaign worker count (0 = all
  // hardware threads); the parallel builders are bit-identical to their
  // serial forms for any thread count, so this is a latency knob only.
  const unsigned build_threads = config_.num_threads;

  // ---- artifact cache probe ----
  // One lookup per construction: a hit supplies every artifact the resolved
  // shape needs; any miss flavor (absent, corrupt, version skew, foreign
  // fingerprint) degrades to a full rebuild + store. Interpreted backends
  // have no cacheable artifacts worth the key (golden alone re-derives in
  // the same walk the interpreter needs anyway), so the cache is
  // compiled-backend only.
  const bool cache_on =
      !config_.cache_dir.empty() && config_.backend == SimBackend::kCompiled;
  const bool cache_opt_kernel = cache_on && config_.optimize;
  ArtifactCacheKey cache_key;
  ArtifactBundle cached;
  bool cache_hit = false;
  if (cache_on) {
    obs::PhaseSpan span(config_.telemetry, "cache_load");
    WallTimer timer;
    cache_key.circuit = circuit_structure_hash(circuit);
    cache_key.testbench = testbench_content_hash(testbench);
    cache_key.config_rule = campaign_config_rule_hash();
    cache_key.optimizer = optimizer_pipeline_hash(config_.optimize);
    cache_key.shape = artifact_shape_hash(
        on_demand_cones_, need_cones, cones_for_eval, cache_opt_kernel,
        (need_cones && !on_demand_cones_) ? lane_count(config_.lanes) : 0,
        (need_cones && !on_demand_cones_) ? config_.greedy_order_cap : 0);
    ArtifactLoadResult loaded =
        load_artifacts(config_.cache_dir, cache_key, circuit);
    telem_.cache_bytes_read = loaded.bytes;
    if (loaded.status == ArtifactCacheStatus::kHit) {
      cache_hit = true;
      telem_.cache_hits = 1;
      cached = std::move(loaded.bundle);
    } else {
      telem_.cache_misses = 1;
      if (loaded.status != ArtifactCacheStatus::kMiss) {
        std::fprintf(stderr, "femu: artifact cache %s: %s -- rebuilding\n",
                     artifact_cache_status_name(loaded.status),
                     loaded.detail.c_str());
      }
    }
    telem_.cache_load_seconds = timer.elapsed_seconds();
  }

  // The raw kernel is always compiled fresh: it binds the live circuit,
  // site-keyed optimizations re-run from it per preserve set, and compiling
  // is orders of magnitude cheaper than the phases the cache skips.
  if (config_.backend == SimBackend::kCompiled) {
    obs::PhaseSpan span(config_.telemetry, "compile");
    WallTimer timer;
    kernel_ = compile_kernel(circuit);
    telem_.compile_seconds = timer.elapsed_seconds();
  }

  // Construction phases are timed unconditionally into the scalar snapshot
  // (a handful of timer reads on a one-time path); the trace spans are
  // emitted only when a collector is attached.
  const bool have_golden = cache_hit && cached.has_golden;
  const bool have_slots = cache_hit && cached.has_slot_trace;
  if (have_golden) golden_ = std::move(cached.golden);
  if (have_slots) slot_trace_ = std::move(cached.slot_trace);
  if (!have_golden || (cones_for_eval && !have_slots)) {
    obs::PhaseSpan span(config_.telemetry, "golden_trace");
    WallTimer timer;
    if (kernel_ != nullptr) {
      // One scalar walk captures every golden view — the output/state trace
      // and (when cone restriction needs them) the full slot snapshots —
      // instead of the former two full passes over the vector set.
      GoldenCapture cap =
          capture_golden_unified(*kernel_, testbench.vectors(), build_threads,
                                 cones_for_eval && !have_slots);
      if (!have_golden) golden_ = std::move(cap.trace);
      if (cones_for_eval && !have_slots) slot_trace_ = std::move(cap.slots);
    } else {
      golden_ = capture_golden(circuit, testbench.vectors());
    }
    telem_.golden_seconds += timer.elapsed_seconds();
  }

  // The cone-affine schedule only needs the cones, not the kernel, so it
  // works (as a grouping heuristic) even on the interpreted backend.
  if (need_cones) {
    const bool have_rank = cache_hit && cached.has_ff_rank;
    if (cache_hit) {
      if (cached.oracle != nullptr) oracle_ = std::move(cached.oracle);
      if (cached.eager_cones != nullptr) cones_ = std::move(cached.eager_cones);
      if (cached.has_labels) next_ff_labels_ = std::move(cached.next_ff_labels);
      if (have_rank) ff_affinity_rank_ = std::move(cached.ff_affinity_rank);
    }
    const bool complete =
        have_rank && (on_demand_cones_
                          ? oracle_ != nullptr && !next_ff_labels_.empty()
                          : cones_ != nullptr);
    if (!complete) {
      obs::PhaseSpan span(config_.telemetry, "cone_build");
      WallTimer timer;
      std::vector<std::uint32_t> order;
      if (on_demand_cones_) {
        // On-demand mode never materializes cone matrices: the oracle serves
        // unions by DFS and the FF ordering comes from the near-linear
        // anchor-rank pass — campaign construction stays near-linear in the
        // circuit size. The labels are kept so a later site-keyed campaign's
        // site ranking reuses them instead of repeating the sweep.
        if (oracle_ == nullptr) {
          oracle_ = std::make_unique<ConeOracle>(circuit, build_threads);
        }
        if (next_ff_labels_.empty()) next_ff_labels_ = next_ff_labels(circuit);
        order = cone_affine_ff_order_anchor(circuit, next_ff_labels_);
      } else {
        if (cones_ == nullptr) {
          cones_ = std::make_unique<FanoutCones>(circuit, build_threads);
        }
        order = cone_affine_ff_order(circuit, *cones_,
                                     lane_count(config_.lanes),
                                     config_.greedy_order_cap);
      }
      if (!have_rank) {
        ff_affinity_rank_.resize(order.size());
        for (std::size_t rank = 0; rank < order.size(); ++rank) {
          ff_affinity_rank_[order[rank]] = static_cast<std::uint32_t>(rank);
        }
      }
      telem_.cone_seconds = timer.elapsed_seconds();
    }
  }

  // FF-model optimized kernel: adopt the cached one, or — when caching — build
  // it eagerly so the stored entry is complete and the first select_run_kernel
  // gets it for free. Its build time lands in compile_seconds (kernel
  // preparation); select_run_kernel's opt_seconds stays a cache-miss meter.
  if (cached.opt_kernel != nullptr) {
    opt_kernel_ff_ = std::move(cached.opt_kernel);
  } else if (cache_opt_kernel && kernel_ != nullptr) {
    obs::PhaseSpan span(config_.telemetry, "optimize");
    WallTimer timer;
    opt_kernel_ff_ = optimize_kernel(kernel_, {});
    telem_.compile_seconds += timer.elapsed_seconds();
  }

  if (cache_on && !cache_hit) {
    obs::PhaseSpan span(config_.telemetry, "cache_store");
    WallTimer timer;
    ArtifactStoreView view;
    view.golden = &golden_;
    if (cones_for_eval) view.slot_trace = &slot_trace_;
    if (need_cones) {
      view.ff_affinity_rank = &ff_affinity_rank_;
      if (on_demand_cones_) {
        view.oracle = oracle_.get();
        view.next_ff_labels = &next_ff_labels_;
      } else {
        view.eager_cones = cones_.get();
      }
    }
    if (opt_kernel_ff_ != nullptr) view.opt_kernel = opt_kernel_ff_.get();
    const ArtifactStoreResult stored =
        store_artifacts(config_.cache_dir, cache_key, view);
    telem_.cache_bytes_written = stored.bytes;
    if (!stored.stored) {
      std::fprintf(stderr, "femu: artifact cache store failed: %s\n",
                   stored.detail.c_str());
    }
    telem_.cache_store_seconds = timer.elapsed_seconds();
  }

  // Golden trace + stimuli pre-broadcast once per campaign engine; shared
  // read-only by every worker thread. Adaptive plans fill in their tail
  // tiers' images lazily (ensure_image) before any worker spawns.
  ensure_image(config_.lanes);
  if (cache_on && config_.telemetry != nullptr) {
    config_.telemetry->record_cache(telem_.cache_hits, telem_.cache_misses,
                                    telem_.cache_bytes_read,
                                    telem_.cache_bytes_written);
  }
}

void ParallelFaultSimulator::ensure_image(LaneWidth width) {
  const bool needed = (width == LaneWidth::k64 && !image64_ready_) ||
                      (width == LaneWidth::k256 && !image256_ready_) ||
                      (width == LaneWidth::k512 && !image512_ready_);
  if (!needed) {
    return;
  }
  obs::PhaseSpan span(config_.telemetry, "word_image");
  WallTimer timer;
  switch (width) {
    case LaneWidth::k64:
      image64_ = GoldenWordImage<std::uint64_t>(golden_, testbench_.vectors(),
                                                config_.num_threads);
      image64_ready_ = true;
      break;
    case LaneWidth::k256:
      image256_ = GoldenWordImage<Word256>(golden_, testbench_.vectors(),
                                           config_.num_threads);
      image256_ready_ = true;
      break;
    case LaneWidth::k512:
      image512_ = GoldenWordImage<Word512>(golden_, testbench_.vectors(),
                                           config_.num_threads);
      image512_ready_ = true;
      break;
  }
  telem_.golden_seconds += timer.elapsed_seconds();
}

void ParallelFaultSimulator::ensure_site_structures() {
  const bool need_cones = (config_.cone_restricted && kernel_ != nullptr) ||
                          config_.schedule == CampaignSchedule::kConeAffine;
  if (!need_cones) {
    return;
  }
  if (on_demand_cones_) {
    // The oracle already answers per-gate cone unions; only the site
    // affinity ranks are missing, and the anchor-label pass derives them
    // without a per-site cone matrix.
    if (config_.schedule == CampaignSchedule::kConeAffine &&
        site_affinity_rank_.empty()) {
      site_affinity_rank_ = cone_affine_site_rank_anchor(
          circuit_, ff_affinity_rank_, next_ff_labels_);
    }
    return;
  }
  if (gate_cones_ != nullptr) {
    return;
  }
  // Whenever need_cones holds, the constructor already built the per-FF
  // cones and the FF affinity ranks (same condition).
  FEMU_CHECK(cones_ != nullptr, "per-FF cones missing");
  gate_cones_ = std::make_unique<GateCones>(circuit_, *cones_);
  if (config_.schedule == CampaignSchedule::kConeAffine) {
    const std::vector<std::uint32_t> order =
        cone_affine_site_order(*gate_cones_, circuit_, ff_affinity_rank_);
    site_affinity_rank_.assign(circuit_.node_count(), 0);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      site_affinity_rank_[gate_cones_->sites()[order[rank]]] =
          static_cast<std::uint32_t>(rank);
    }
  }
}

void ParallelFaultSimulator::select_run_kernel(std::vector<NodeId> preserve) {
  if (kernel_ == nullptr || !config_.optimize) {
    run_kernel_ = kernel_;  // raw stream (or interpreted: no kernel at all)
    telem_.opt_seconds = 0.0;
    telem_.opt_raw_instrs = telem_.opt_instrs = 0;
    telem_.opt_absorbed = telem_.opt_folded = telem_.opt_dead = 0;
    telem_.opt_preserved = 0;
    if (config_.telemetry != nullptr) {
      config_.telemetry->record_optimizer(0, 0, 0, 0, 0, 0);
    }
    return;
  }
  std::sort(preserve.begin(), preserve.end());
  preserve.erase(std::unique(preserve.begin(), preserve.end()),
                 preserve.end());
  double build_seconds = 0.0;
  if (preserve.empty()) {
    // FF-keyed models (SEU/MBU) inject into state words, never gate slots:
    // one maximally-optimized kernel serves every such run.
    if (opt_kernel_ff_ == nullptr) {
      obs::PhaseSpan span(config_.telemetry, "optimize");
      WallTimer timer;
      opt_kernel_ff_ = optimize_kernel(kernel_, preserve);
      build_seconds = timer.elapsed_seconds();
    }
    run_kernel_ = opt_kernel_ff_;
  } else {
    // Site-keyed models: a kernel optimized under a superset preserve set is
    // sound (just less optimized), so reuse the cached one while this run's
    // sites are a subset of what it keeps materialized.
    const bool subset =
        opt_kernel_site_ != nullptr &&
        std::includes(site_preserve_.begin(), site_preserve_.end(),
                      preserve.begin(), preserve.end());
    if (!subset) {
      obs::PhaseSpan span(config_.telemetry, "optimize");
      WallTimer timer;
      opt_kernel_site_ = optimize_kernel(kernel_, preserve);
      build_seconds = timer.elapsed_seconds();
      site_preserve_ = std::move(preserve);
    }
    run_kernel_ = opt_kernel_site_;
  }
  const CompiledKernel::OptStats& stats = run_kernel_->opt_stats();
  telem_.opt_seconds = build_seconds;
  telem_.opt_raw_instrs = stats.raw_instrs;
  telem_.opt_instrs = stats.opt_instrs;
  telem_.opt_absorbed = stats.absorbed;
  telem_.opt_folded = stats.folded;
  telem_.opt_dead = stats.dead;
  telem_.opt_preserved = stats.preserved;
  if (config_.telemetry != nullptr) {
    config_.telemetry->record_optimizer(stats.raw_instrs, stats.opt_instrs,
                                        stats.absorbed, stats.folded,
                                        stats.dead, stats.preserved);
  }
}

// ---- schedule permutation --------------------------------------------------

template <typename Traits>
std::vector<std::uint32_t> ParallelFaultSimulator::schedule_permutation(
    std::span<const typename Traits::FaultT> faults) const {
  if (config_.schedule == CampaignSchedule::kAsGiven) {
    return identity_perm(faults.size());
  }
  const std::span<const std::uint32_t> ranks =
      Traits::kSiteKeyed ? std::span<const std::uint32_t>(site_affinity_rank_)
                         : std::span<const std::uint32_t>(ff_affinity_rank_);
  const bool affine = config_.schedule == CampaignSchedule::kConeAffine &&
                      !ranks.empty();
  // Cone-affine is block-major: the affinity order is a concatenation of
  // lane-width blocks with small cone unions; keying by (block, cycle,
  // rank) lays out each block's faults cycle-major and back to back, so a
  // lane group is exactly one block at one cycle — same small cone union,
  // single injection cycle — instead of drifting across block boundaries.
  const std::uint64_t block = lane_count(config_.lanes);
  // The FF affinity order leads with the partial block (num_ffs mod width),
  // so rank-to-block mapping pads the front to keep later blocks
  // width-aligned; site ranks are width-aligned from rank 0.
  const std::uint64_t pad =
      affine && !Traits::kSiteKeyed
          ? (block - ff_affinity_rank_.size() % block) % block
          : 0;
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t stride =
      Traits::kSiteKeyed ? circuit_.node_count() : circuit_.num_dffs();
  return keyed_schedule_perm(faults.size(), [&](std::size_t i) {
    const typename Traits::FaultT& f = faults[i];
    const std::uint64_t site = Traits::schedule_site(f);
    if (affine) {
      // Dense bucket id (block, cycle, rank-within-block): small enough for
      // a counting sort over the whole campaign.
      const std::uint64_t rank = ranks[site] + pad;
      return (rank / block * num_cycles + Traits::cycle(f)) * block +
             rank % block;
    }
    return std::uint64_t{Traits::cycle(f)} * stride + site;
  });
}

// ---- lane-group plan -------------------------------------------------------

template <typename Traits>
std::vector<ParallelFaultSimulator::GroupSpec>
ParallelFaultSimulator::group_plan(
    std::span<const typename Traits::FaultT> faults) {
  std::vector<GroupSpec> plan;
  const std::size_t n = faults.size();
  const std::size_t width = lane_count(config_.lanes);
  const bool adaptive =
      config_.width_policy == WidthPolicy::kAdaptive && kernel_ != nullptr;
  if (n != 0 && !adaptive) {
    // kFixed: consecutive full-width spans — the historical grouping,
    // bit-identical outcomes *and* metrics.
    plan.reserve((n + width - 1) / width);
    for (std::size_t b = 0; b < n; b += width) {
      plan.push_back({static_cast<std::uint32_t>(b),
                      static_cast<std::uint32_t>(std::min(width, n - b)),
                      config_.lanes});
    }
  } else if (n != 0) {
    // kAdaptive, two rules. (1) On sparse campaigns, never cross a
    // cone-affinity block boundary: the block-major schedule keys by
    // (block, cycle, rank), so a group packed across blocks unions several
    // blocks' cones — cheap for dense campaigns (a block spans many groups)
    // but ruinous for sparse samples, where a full-width group sweeps up
    // ~width/sample_rate blocks. Cutting at block edges keeps every group's
    // cone union one block wide. On *dense* campaigns (average block fill
    // >= 3/4 of the lane width) the fixed packing already aligns with the
    // blocks, and per-block tails would only add groups — so the whole run
    // stays one segment. (2) Decompose each segment's tail into the
    // cheapest tier cover (see CampaignConfig::kTail512Min/kTail256Min):
    // dead lanes still stream their limbs, so a word wider than its
    // live-lane count pays full bandwidth for partial work.
    const std::span<const std::uint32_t> ranks =
        Traits::kSiteKeyed
            ? std::span<const std::uint32_t>(site_affinity_rank_)
            : std::span<const std::uint32_t>(ff_affinity_rank_);
    const bool affine = config_.schedule == CampaignSchedule::kConeAffine &&
                        !ranks.empty();
    const std::uint64_t block = width;
    const std::uint64_t pad =
        affine && !Traits::kSiteKeyed
            ? (block - ff_affinity_rank_.size() % block) % block
            : 0;
    const auto block_of = [&](std::size_t i) -> std::uint64_t {
      return affine ? (ranks[Traits::schedule_site(faults[i])] + pad) / block
                    : 0;
    };
    const auto emit_segment = [&](std::size_t begin, std::size_t end) {
      std::size_t i = begin;
      while (end - i >= width) {
        plan.push_back({static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(width), config_.lanes});
        i += width;
      }
      while (i < end) {
        const std::size_t rest = end - i;
        LaneWidth w = LaneWidth::k64;
        if (config_.lanes == LaneWidth::k512 &&
            rest > CampaignConfig::kTail512Min) {
          w = LaneWidth::k512;
        } else if (config_.lanes != LaneWidth::k64 &&
                   rest > CampaignConfig::kTail256Min) {
          w = LaneWidth::k256;
        }
        const std::size_t take = std::min(rest, lane_count(w));
        plan.push_back({static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(take), w});
        i += take;
      }
    };
    // Scheduled order is block-major, so block_of is non-decreasing and the
    // distinct-block count is one pass.
    std::size_t distinct_blocks = 1;
    for (std::size_t i = 1; i < n; ++i) {
      if (block_of(i) != block_of(i - 1)) ++distinct_blocks;
    }
    const bool dense = n * 4 >= distinct_blocks * width * 3;
    if (dense) {
      emit_segment(0, n);
    } else {
      std::size_t seg_begin = 0;
      std::uint64_t seg_block = block_of(0);
      for (std::size_t i = 1; i < n; ++i) {
        const std::uint64_t b = block_of(i);
        if (b != seg_block) {
          emit_segment(seg_begin, i);
          seg_begin = i;
          seg_block = b;
        }
      }
      emit_segment(seg_begin, n);
    }
  }

  GroupWidthCounts counts;
  std::uint64_t lane_slots = 0;
  for (const GroupSpec& g : plan) {
    lane_slots += lane_count(g.width);
    switch (g.width) {
      case LaneWidth::k64: ++counts.g64; break;
      case LaneWidth::k256: ++counts.g256; break;
      case LaneWidth::k512: ++counts.g512; break;
    }
  }
  telem_.group_widths = counts;
  telem_.lane_occupancy =
      lane_slots != 0 ? static_cast<double>(n) /
                            static_cast<double>(lane_slots)
                      : 1.0;
  return plan;
}

// ---- campaign entry points -------------------------------------------------
//
// One thin wrapper per model: run the generic driver, shape the result.

CampaignResult ParallelFaultSimulator::run(std::span<const Fault> faults) {
  WallTimer timer;
  std::vector<FaultOutcome> outcomes(faults.size());
  run_model<FaultModelTraits<FaultModel::kSeu>>(faults, outcomes);
  telem_.seconds = timer.elapsed_seconds();
  return CampaignResult(std::vector<Fault>(faults.begin(), faults.end()),
                        std::move(outcomes));
}

MbuCampaignResult ParallelFaultSimulator::run_mbu(
    std::span<const MbuFault> faults) {
  WallTimer timer;
  MbuCampaignResult result;
  result.faults.assign(faults.begin(), faults.end());
  result.outcomes.resize(faults.size());
  run_model<FaultModelTraits<FaultModel::kMbu>>(faults, result.outcomes);
  result.counts.add(result.outcomes);
  telem_.seconds = timer.elapsed_seconds();
  return result;
}

SetCampaignResult ParallelFaultSimulator::run_set(
    std::span<const SetFault> faults) {
  WallTimer timer;
  SetCampaignResult result;
  result.faults.assign(faults.begin(), faults.end());
  result.outcomes.resize(faults.size());
  run_model<FaultModelTraits<FaultModel::kSet>>(faults, result.outcomes);
  result.counts.add(result.outcomes);
  telem_.seconds = timer.elapsed_seconds();
  return result;
}

StuckAtCampaignResult ParallelFaultSimulator::run_stuckat(
    std::span<const StuckAtFault> faults) {
  WallTimer timer;
  StuckAtCampaignResult result;
  result.faults.assign(faults.begin(), faults.end());
  result.outcomes.resize(faults.size());
  run_model<FaultModelTraits<FaultModel::kStuckAt>>(faults, result.outcomes);
  result.counts.add(result.outcomes);
  telem_.seconds = timer.elapsed_seconds();
  return result;
}

// ---- generic campaign driver -----------------------------------------------

template <typename Traits>
void ParallelFaultSimulator::run_model(
    std::span<const typename Traits::FaultT> faults,
    std::span<FaultOutcome> outcomes) {
  using FaultT = typename Traits::FaultT;
  using View = ModelView<Traits>;

  if constexpr (Traits::kUsesOverlay) {
    FEMU_CHECK(kernel_ != nullptr, fault_model_name(Traits::kModel),
               " campaigns require the compiled backend "
               "(the injection overlay is an instruction-stream mechanism)");
  }
  const std::size_t num_cycles = testbench_.num_cycles();
  for (const FaultT& fault : faults) {
    Traits::validate(circuit_, num_cycles, fault);
  }
  if constexpr (Traits::kSiteKeyed) {
    // Built lazily on the first site-keyed campaign; FF-keyed campaigns
    // never pay for the per-gate structures.
    ensure_site_structures();
  }

  // Resolve the instruction stream this run executes: the raw kernel, or an
  // optimized clone whose preserve set covers every injection site in this
  // fault list (cached — see select_run_kernel).
  {
    std::vector<NodeId> preserve;
    Traits::collect_preserve(faults, preserve);
    select_run_kernel(std::move(preserve));
  }

  // Planning span covers the schedule sort, the permuted copy, the width
  // plan and any lazily-built tail-tier golden images. Taken manually (not
  // PhaseSpan) because the planned vectors must outlive the span scope.
  const std::uint64_t plan_begin_ns = config_.telemetry ? now_ns() : 0;

  const std::vector<std::uint32_t> perm =
      schedule_permutation<Traits>(faults);

  // Run over a permuted view, scatter outcomes back through the inverse
  // permutation so results align with caller order.
  bool permuted = false;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) {
      permuted = true;
      break;
    }
  }
  std::vector<FaultT> scheduled;
  std::vector<FaultOutcome> scheduled_outcomes;
  std::span<const FaultT> run_faults = faults;
  std::span<FaultOutcome> run_outcomes = outcomes;
  if (permuted) {
    scheduled.reserve(faults.size());
    for (const std::uint32_t idx : perm) scheduled.push_back(faults[idx]);
    scheduled_outcomes.resize(faults.size());
    run_faults = scheduled;
    run_outcomes = scheduled_outcomes;
  }

  // Partition the scheduled list into lane groups (the width policy's
  // product — see group_plan) and make sure every tier the plan uses has
  // its golden word image before any worker spawns.
  const std::vector<GroupSpec> plan = group_plan<Traits>(run_faults);
  for (const GroupSpec& spec : plan) {
    ensure_image(spec.width);
  }
  if (config_.telemetry != nullptr) {
    config_.telemetry->record_campaign_span("plan", plan_begin_ns, now_ns());
  }

  // Failure-signature buffer in scheduled order (scattered back through the
  // permutation at the end, like the outcomes). Empty span = capture off —
  // the group runners skip the syndrome work entirely.
  std::vector<std::uint64_t> scheduled_sigs;
  std::span<std::uint64_t> run_sigs;
  if (capture_signatures_) {
    scheduled_sigs.assign(faults.size(), 0);
    run_sigs = scheduled_sigs;
  }
  const auto sig_span = [&](const GroupSpec& spec) {
    return run_sigs.empty() ? std::span<std::uint64_t>{}
                            : run_sigs.subspan(spec.begin, spec.count);
  };
  // Streaming retire: as soon as a group's outcomes are final, hand them to
  // the caller's callback with caller-order indices (perm maps scheduled
  // position -> caller position). Runs on the worker thread that finished
  // the group; the callback is responsible for its own synchronization.
  const auto notify_retire = [&](const GroupSpec& spec,
                                 std::span<const FaultOutcome> group_outcomes,
                                 std::span<const std::uint64_t> group_sigs) {
    if (!retire_cb_) {
      return;
    }
    std::vector<std::uint32_t> indices(spec.count);
    for (std::uint32_t j = 0; j < spec.count; ++j) {
      indices[j] = perm[spec.begin + j];
    }
    retire_cb_(indices, group_outcomes, group_sigs);
  };

  unsigned workers = config_.num_threads != 0
                         ? config_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(plan.size(), 1)));
  telem_.threads = workers;
  telem_.faults = faults.size();

  // Arm the collector before any worker thread exists (per-worker shards
  // and trace tracks are pre-registered; workers then record lock-free).
  obs::TelemetryCollector* const collector = config_.telemetry;
  if (collector != nullptr) {
    collector->begin_run(workers, faults.size());
  }
  const std::uint64_t grade_begin_ns = collector != nullptr ? now_ns() : 0;

  const auto make_view = [this](std::span<const FaultT> group) {
    return View{group, {cones_.get(), gate_cones_.get(), oracle_.get()}};
  };

  const bool cone = config_.cone_restricted && kernel_ != nullptr;
  if (kernel_) {
    // Compiled backend, all widths and both width policies: each worker
    // holds one lazily-constructed engine per tier and every group runs at
    // its spec'd width.
    const auto run_tier = [&]<typename Word>(
                              std::optional<LaneEngine<Word>>& engine,
                              const GoldenWordImage<Word>& image,
                              std::span<const FaultT> group_faults,
                              std::span<FaultOutcome> group_outcomes,
                              std::span<std::uint64_t> group_sigs,
                              WorkerScratch& scratch) {
      if (!engine.has_value()) {
        engine.emplace(run_kernel_);
      }
      const View view = make_view(group_faults);
      if (cone) {
        run_group_cone(*engine, image, view, group_outcomes, group_sigs,
                       scratch);
      } else {
        run_group_full(*engine, image, view, group_outcomes, group_sigs,
                       scratch);
      }
    };
    const auto make_engine = [] { return LaneEngineSet{}; };
    const auto run_group = [&](LaneEngineSet& engines, const GroupSpec& spec,
                               std::span<const FaultT> group_faults,
                               std::span<FaultOutcome> group_outcomes,
                               WorkerScratch& scratch) {
      const std::span<std::uint64_t> group_sigs = sig_span(spec);
      // Null telemetry is the fast path: no timestamps, no recording —
      // the only per-group cost is this pointer test.
      obs::WorkerTelemetry* const wt = scratch.telemetry;
      std::uint64_t begin_ns = 0, instrs0 = 0, narrows0 = 0;
      if (wt != nullptr) {
        begin_ns = now_ns();
        instrs0 = scratch.eval_instrs;
        narrows0 = scratch.narrowings;
      }
      switch (spec.width) {
        case LaneWidth::k64:
          run_tier.template operator()<std::uint64_t>(
              engines.e64, image64_, group_faults, group_outcomes, group_sigs,
              scratch);
          break;
        case LaneWidth::k256:
          run_tier.template operator()<Word256>(
              engines.e256, image256_, group_faults, group_outcomes,
              group_sigs, scratch);
          break;
        case LaneWidth::k512:
          run_tier.template operator()<Word512>(
              engines.e512, image512_, group_faults, group_outcomes,
              group_sigs, scratch);
          break;
      }
      if (wt != nullptr) {
        wt->group_slice(begin_ns, now_ns(),
                        static_cast<std::uint32_t>(lane_count(spec.width)),
                        spec.count,
                        static_cast<std::uint32_t>(scratch.narrowings -
                                                   narrows0),
                        scratch.eval_instrs - instrs0);
      }
      notify_retire(spec, group_outcomes, group_sigs);
    };
    run_sharded<FaultT>(make_engine, run_group, plan, run_faults,
                        run_outcomes, workers);
  } else {
    // Interpreted backend: full-eval only, 64 lanes only (so the plan is
    // always fixed 64-wide spans), and no instruction stream to overlay —
    // the overlay-model check above rejects that configuration up front.
    if constexpr (!View::kHasOverlay) {
      const auto make_engine = [this] {
        return ParallelSimulator(circuit_, SimBackend::kInterpreted);
      };
      const auto run_group = [&](ParallelSimulator& engine,
                                 const GroupSpec& spec,
                                 std::span<const FaultT> group_faults,
                                 std::span<FaultOutcome> group_outcomes,
                                 WorkerScratch& scratch) {
        const std::span<std::uint64_t> group_sigs = sig_span(spec);
        obs::WorkerTelemetry* const wt = scratch.telemetry;
        std::uint64_t begin_ns = 0, instrs0 = 0;
        if (wt != nullptr) {
          begin_ns = now_ns();
          instrs0 = scratch.eval_instrs;
        }
        run_group_full(engine, image64_, make_view(group_faults),
                       group_outcomes, group_sigs, scratch);
        if (wt != nullptr) {
          wt->group_slice(begin_ns, now_ns(),
                          static_cast<std::uint32_t>(lane_count(spec.width)),
                          spec.count, 0, scratch.eval_instrs - instrs0);
        }
        notify_retire(spec, group_outcomes, group_sigs);
      };
      run_sharded<FaultT>(make_engine, run_group, plan, run_faults,
                          run_outcomes, workers);
    } else {
      FEMU_CHECK(false, "overlay models require the compiled backend");
    }
  }

  if (collector != nullptr) {
    collector->record_campaign_span("grade", grade_begin_ns, now_ns());
    collector->end_run();
  }

  if (permuted) {
    for (std::size_t i = 0; i < perm.size(); ++i) {
      outcomes[perm[i]] = scheduled_outcomes[i];
    }
  }
  if (capture_signatures_) {
    last_run_signatures_.assign(faults.size(), 0);
    for (std::size_t i = 0; i < perm.size(); ++i) {
      last_run_signatures_[perm[i]] = scheduled_sigs[i];
    }
  } else {
    last_run_signatures_.clear();
  }
}

template <typename FaultT, typename MakeEngine, typename RunGroup>
void ParallelFaultSimulator::run_sharded(const MakeEngine& make_engine,
                                         const RunGroup& run_group,
                                         std::span<const GroupSpec> plan,
                                         std::span<const FaultT> faults,
                                         std::span<FaultOutcome> outcomes,
                                         unsigned num_workers) {
  const std::size_t num_groups = plan.size();

  const auto group_span = [&](std::size_t g) {
    const GroupSpec& spec = plan[g];
    return std::pair{faults.subspan(spec.begin, spec.count),
                     outcomes.subspan(spec.begin, spec.count)};
  };

  if (num_workers <= 1 || num_groups <= 1) {
    auto engine = make_engine();
    WorkerScratch scratch;
    if (config_.telemetry != nullptr) {
      scratch.telemetry = &config_.telemetry->worker(0);
    }
    for (std::size_t g = 0; g < num_groups; ++g) {
      const auto [group_faults, group_outcomes] = group_span(g);
      run_group(engine, plan[g], group_faults, group_outcomes, scratch);
    }
    telem_.eval_cycles = scratch.eval_cycles;
    telem_.eval_instrs = scratch.eval_instrs;
    telem_.eval_slot_bytes = scratch.eval_slot_bytes;
    telem_.narrowings = scratch.narrowings;
    return;
  }

  // Work-stealing pool: each worker owns one engine and one scratch (sharing
  // the read-only kernel, cones, slot trace and golden images) and pulls
  // group indices from an atomic counter. Each group writes a disjoint
  // outcome slice, so the result is identical for any worker count or
  // scheduling order.
  std::atomic<std::size_t> next_group{0};
  std::atomic<std::uint64_t> total_eval_cycles{0};
  std::atomic<std::uint64_t> total_eval_instrs{0};
  std::atomic<std::uint64_t> total_eval_slot_bytes{0};
  std::atomic<std::uint64_t> total_narrowings{0};
  const auto worker = [&](unsigned worker_id) {
    auto engine = make_engine();
    WorkerScratch scratch;
    if (config_.telemetry != nullptr) {
      scratch.telemetry = &config_.telemetry->worker(worker_id);
    }
    for (std::size_t g = next_group.fetch_add(1, std::memory_order_relaxed);
         g < num_groups;
         g = next_group.fetch_add(1, std::memory_order_relaxed)) {
      const auto [group_faults, group_outcomes] = group_span(g);
      run_group(engine, plan[g], group_faults, group_outcomes, scratch);
    }
    total_eval_cycles.fetch_add(scratch.eval_cycles,
                                std::memory_order_relaxed);
    total_eval_instrs.fetch_add(scratch.eval_instrs,
                                std::memory_order_relaxed);
    total_eval_slot_bytes.fetch_add(scratch.eval_slot_bytes,
                                    std::memory_order_relaxed);
    total_narrowings.fetch_add(scratch.narrowings, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(num_workers - 1);
  for (unsigned i = 1; i < num_workers; ++i) {
    pool.emplace_back(worker, i);
  }
  worker(0);  // the calling thread is worker 0
  for (auto& t : pool) {
    t.join();
  }
  telem_.eval_cycles = total_eval_cycles.load();
  telem_.eval_instrs = total_eval_instrs.load();
  telem_.eval_slot_bytes = total_eval_slot_bytes.load();
  telem_.narrowings = total_narrowings.load();
}

template <typename View>
void ParallelFaultSimulator::sort_group_order(const View& view,
                                              WorkerScratch& scratch) const {
  // Injection schedule sorted by cycle: injections then advance a cursor
  // instead of rescanning all lanes per cycle, and the cursor's head is the
  // next injection cycle the fast-forward path jumps to. The index vector is
  // per-worker scratch — reused across groups, no per-group allocation.
  scratch.order.resize(view.size());
  std::iota(scratch.order.begin(), scratch.order.end(), 0u);
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              return view.cycle(x) < view.cycle(y);
            });
}

template <typename Engine, typename Word, typename View>
void ParallelFaultSimulator::run_group_full(Engine& engine,
                                            const GoldenWordImage<Word>& image,
                                            const View& view,
                                            std::span<FaultOutcome> outcomes,
                                            std::span<std::uint64_t> sigs,
                                            WorkerScratch& scratch) const {
  using T = LaneTraits<Word>;
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t program_size =
      run_kernel_ ? run_kernel_->program().size() : circuit_.num_gates();
  const std::size_t slot_bytes = circuit_.node_count() * sizeof(Word);
  const std::size_t group_size = view.size();
  const Word group_mask = T::first_n(group_size);

  sort_group_order(view, scratch);
  const std::vector<std::uint32_t>& order = scratch.order;
  std::size_t cursor = 0;

  // Default: latent (overwritten on detection/convergence below).
  for (auto& outcome : outcomes) {
    outcome = FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle};
  }

  const std::uint32_t first_cycle = view.cycle(order.front());
  engine.broadcast_state(golden_.states[first_cycle]);
  Word injected = T::zero();
  Word classified = T::zero();
  [[maybe_unused]] auto& overlay = overlay_in<Word>(scratch);
  if constexpr (View::kHasOverlay && View::kOverlayEveryCycle) {
    // Permanent faults: one persistent overlay entry per lane, applied on
    // every cycle's evaluation — built once per group.
    overlay.clear();
    for (std::size_t lane = 0; lane < group_size; ++lane) {
      overlay.push_back(view.template overlay_entry<Word>(
          lane, view.overlay_node(lane)));
    }
    finalize_overlay(overlay);
  }
  // Final-state divergence for models without convergence retirement (their
  // undetected lanes map to latent/silent after the loop).
  [[maybe_unused]] Word final_differs = T::zero();

  for (std::size_t t = first_cycle; t < num_cycles; ++t) {
    // Inject the lanes whose cycle has arrived. SEU/MBU flips happen in
    // state(t), before cycle t evaluates — the upset hits the new state;
    // an overlay model's lane instead contributes an overlay entry so the
    // fault lands inline during this cycle's evaluation.
    if constexpr (View::kHasOverlay && !View::kOverlayEveryCycle) {
      overlay.clear();
    }
    [[maybe_unused]] bool thin_now = false;
    [[maybe_unused]] const std::size_t inject_begin = cursor;
    while (cursor < order.size() && view.cycle(order[cursor]) == t) {
      const std::uint32_t lane = order[cursor];
      view.inject(engine, lane);
      if constexpr (View::kHasOverlay && !View::kOverlayEveryCycle) {
        overlay.push_back(view.template overlay_entry<Word>(
            lane, view.overlay_node(lane)));
      }
      if constexpr (View::kLatchThinning) {
        thin_now = thin_now || view.lane_thins(lane);
      }
      injected |= T::lane_bit(lane);
      ++cursor;
    }

    if constexpr (View::kHasOverlay) {
      if constexpr (!View::kOverlayEveryCycle) {
        finalize_overlay(overlay);
      }
      engine.eval_words_overlay(image.inputs(t), overlay);
    } else {
      engine.eval_words(image.inputs(t));
    }
    ++scratch.eval_cycles;
    scratch.eval_instrs += program_size;
    scratch.eval_slot_bytes += slot_bytes;

    const Word mismatch =
        engine.output_mismatch_lanes(image.outputs(t)) & injected &
        ~classified;
    if (T::any(mismatch)) {
      for (std::size_t lane = 0; lane < group_size; ++lane) {
        if (T::test(mismatch, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kFailure;
          outcomes[lane].detect_cycle = static_cast<std::uint32_t>(t);
          if (!sigs.empty()) {
            // Failure signature: faulty XOR golden outputs at the detect
            // cycle (the serial dictionary's syndrome, same hash).
            BitVec syndrome = engine.lane_outputs(static_cast<unsigned>(lane));
            syndrome ^= golden_.outputs[t];
            sigs[lane] = syndrome.hash();
          }
        }
      }
      classified |= mismatch;
    }

    engine.step();

    if constexpr (View::kLatchThinning) {
      // Latching-window thinning: a sub-full-width pulse misses some
      // destination FFs' setup windows; those latch the broadcast golden
      // next-state value instead of the transient-disturbed D.
      if (thin_now) {
        const auto golden_state = image.states(t + 1);
        for (std::size_t c = inject_begin; c < cursor; ++c) {
          const std::uint32_t lane = order[c];
          if (!view.lane_thins(lane)) continue;
          for (std::uint32_t ff = 0; ff < image.num_ffs; ++ff) {
            if (!view.latches(lane, ff)) {
              engine.force_state_lanes(ff, T::lane_bit(lane),
                                       golden_state[ff]);
            }
          }
        }
      }
    }

    if constexpr (View::kRetireOnConvergence) {
      const Word differs = engine.state_mismatch_lanes(image.states(t + 1));
      const Word converged = injected & ~classified & ~differs;
      if (T::any(converged)) {
        for (std::size_t lane = 0; lane < group_size; ++lane) {
          if (T::test(converged, static_cast<unsigned>(lane))) {
            outcomes[lane].cls = FaultClass::kSilent;
            outcomes[lane].converge_cycle = static_cast<std::uint32_t>(t + 1);
          }
        }
        classified |= converged;
      }
    } else if (t + 1 == num_cycles) {
      final_differs = engine.state_mismatch_lanes(image.states(num_cycles));
    }

    if (classified == group_mask) {
      return;  // every lane graded — skip the testbench tail entirely
    }

    // Fast-forward: when every already-injected lane is graded, the pending
    // lanes are bit-identical to the golden machine, so jump straight to the
    // next injection cycle (the cursor head) from the golden state image.
    if (!T::any(injected & ~classified) && cursor < order.size()) {
      const std::uint32_t next_cycle = view.cycle(order[cursor]);
      if (next_cycle > t + 1) {
        engine.broadcast_state(golden_.states[next_cycle]);
        t = next_cycle - 1;  // loop increment lands on next_cycle
      }
    }
  }
  if constexpr (!View::kRetireOnConvergence) {
    // Test-pattern mapping for undetected permanent faults: latent when the
    // final state still differs from golden (excited but unobserved),
    // silent when it does not. No converge_cycle — the fault never goes
    // away.
    const Word benign = group_mask & ~classified & ~final_differs;
    for (std::size_t lane = 0; lane < group_size; ++lane) {
      if (T::test(benign, static_cast<unsigned>(lane))) {
        outcomes[lane].cls = FaultClass::kSilent;
      }
    }
  }
  // Remaining unclassified lanes stay latent (their final state differs and
  // no output ever deviated).
}

template <typename Word, typename View>
void ParallelFaultSimulator::run_group_cone(LaneEngine<Word>& engine,
                                            const GoldenWordImage<Word>& image,
                                            const View& view,
                                            std::span<FaultOutcome> outcomes,
                                            std::span<std::uint64_t> sigs,
                                            WorkerScratch& scratch) const {
  using T = LaneTraits<Word>;
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t group_size = view.size();
  const Word group_mask = T::first_n(group_size);

  sort_group_order(view, scratch);
  const std::vector<std::uint32_t>& order = scratch.order;
  std::size_t cursor = 0;

  for (auto& outcome : outcomes) {
    outcome = FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle};
  }

  // Initial cone: union of every group fault's cone. Under the block-major
  // cone-affine schedule consecutive groups carry the same site block, so
  // the derived initial sub-program is cached in the worker scratch keyed
  // on the group's site set and rebuilt only when the block changes.
  const std::size_t ff_words = (circuit_.num_dffs() + 63) / 64;
  const std::size_t lane_words = (T::kLanes + 63) / 64;
  const std::size_t key_words =
      View::kKeyOverNodes ? words_per_cone_ : ff_words;
  std::vector<std::uint64_t>& group_key = scratch.group_key;
  group_key.assign(key_words, 0);
  for (std::size_t i = 0; i < group_size; ++i) {
    view.seed_key(group_key, i);
  }
  if (!scratch.initial_valid || group_key != scratch.cached_key) {
    scratch.cached_key = group_key;
    scratch.initial_mask.assign(words_per_cone_, 0);
    for (std::size_t i = 0; i < group_size; ++i) {
      view.union_cone(scratch.initial_mask, i);
    }
    run_kernel_->build_subprogram(scratch.initial_mask, scratch.initial_sp,
                                  nullptr, config_.levelized_arena);
    scratch.initial_valid = true;
  }
  std::vector<std::uint64_t>& mask = scratch.cone_mask;
  mask = scratch.initial_mask;
  const CompiledKernel::ConeSubProgram* sp = &scratch.initial_sp;
  unsigned narrow_buf = 0;  // next narrow_sp buffer to write (ping-pong)

  // The sub-program is re-derived (narrowed) at checkpoints — whenever any
  // lane classified since the last checkpoint, and every kNarrowInterval
  // cycles — from what is *currently* diverged: the cones of the flip-flops
  // whose lane state differs from golden in any active lane, plus the seed
  // cones of lanes whose bound no FF bit can express (lanes still waiting
  // to inject — and, for every-cycle overlay models, every unclassified
  // lane: a permanent fault keeps re-entering at its site, so its seed cone
  // stays a divergence bound forever). Those lanes are tracked as per-lane
  // tail bits in the fingerprint. Divergence can only move inside the
  // structural closure, so the re-derived mask is always a subset of the
  // current one and the sub-program only ever shrinks; latent faults whose
  // divergence parks in a few dead-end flip-flops stop paying for the full
  // injection cone. The fingerprint is remembered between checkpoints: once
  // the tail stabilises (same FFs diverged, typical for latent survivors)
  // the checkpoint is a bitset compare, with no union or derivation work.
  std::size_t narrow_below = group_size - 1;
  constexpr std::size_t kNarrowInterval = 4;
  std::vector<std::uint64_t>& next_mask = scratch.narrow_mask;
  std::vector<std::uint64_t>& diverged = scratch.diverged_ffs;
  // Seed with every lane's tail bit — the bound the initial sub-program was
  // derived from.
  diverged.assign(ff_words + lane_words, 0);
  for (std::size_t lane = 0; lane < group_size; ++lane) {
    diverged[ff_words + (lane >> 6)] |= std::uint64_t{1} << (lane & 63);
  }

  const std::uint32_t first_cycle = view.cycle(order.front());
  engine.broadcast_state(golden_.states[first_cycle]);
  Word injected = T::zero();
  Word classified = T::zero();
  std::size_t next_narrow_check = first_cycle + kNarrowInterval;
  [[maybe_unused]] auto& overlay = overlay_in<Word>(scratch);
  // Every-cycle overlays live in arena space, so they are rebuilt whenever
  // the sub-program changes (the ping-pong narrow buffers can reuse an
  // address, so a dirty flag — not the pointer — tracks staleness).
  [[maybe_unused]] bool overlay_dirty = true;
  [[maybe_unused]] Word final_differs = T::zero();

  for (std::size_t t = first_cycle; t < num_cycles; ++t) {
    if constexpr (View::kHasOverlay && View::kOverlayEveryCycle) {
      if (overlay_dirty) {
        overlay.clear();
        for (std::size_t lane = 0; lane < group_size; ++lane) {
          // A site the (narrowed) sub-program no longer computes is
          // dropped — its fault provably cannot affect what is still
          // evaluated (only possible for already-classified lanes, whose
          // seed bound left the mask).
          const std::uint32_t s = view.overlay_node(lane);
          if (sp->in_cone(s)) {
            overlay.push_back(view.template overlay_entry<Word>(
                lane, sp->local_of_slot[s]));
          }
        }
        finalize_overlay(overlay);
        overlay_dirty = false;
      }
    } else if constexpr (View::kHasOverlay) {
      overlay.clear();
    }
    [[maybe_unused]] bool thin_now = false;
    [[maybe_unused]] const std::size_t inject_begin = cursor;
    while (cursor < order.size() && view.cycle(order[cursor]) == t) {
      const std::uint32_t lane = order[cursor];
      view.inject(engine, lane);
      if constexpr (View::kHasOverlay && !View::kOverlayEveryCycle) {
        // Overlay destinations live in the sub-program's arena space; a
        // site the (narrowed) sub-program no longer computes is dropped —
        // its transient provably cannot affect what is still evaluated.
        const std::uint32_t s = view.overlay_node(lane);
        if (sp->in_cone(s)) {
          overlay.push_back(view.template overlay_entry<Word>(
              lane, sp->local_of_slot[s]));
        }
      }
      if constexpr (View::kLatchThinning) {
        thin_now = thin_now || view.lane_thins(lane);
      }
      injected |= T::lane_bit(lane);
      ++cursor;
    }

    if constexpr (View::kHasOverlay) {
      if constexpr (!View::kOverlayEveryCycle) {
        finalize_overlay(overlay);
      }
      engine.eval_cone_overlay(*sp, slot_trace_.at(t), overlay);
    } else {
      engine.eval_cone(*sp, slot_trace_.at(t));
    }
    ++scratch.eval_cycles;
    scratch.eval_instrs += sp->instrs.size();
    scratch.eval_slot_bytes += sp->arena_slots * sizeof(Word);

    const Word mismatch =
        engine.output_mismatch_lanes_cone(*sp, image.outputs(t)) & injected &
        ~classified;
    if (T::any(mismatch)) {
      for (std::size_t lane = 0; lane < group_size; ++lane) {
        if (T::test(mismatch, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kFailure;
          outcomes[lane].detect_cycle = static_cast<std::uint32_t>(t);
          if (!sigs.empty()) {
            // Full-width syndrome from the cone arena: outputs outside the
            // (narrowed) sub-program are provably golden, so the XOR below
            // matches the full-eval and serial syndromes bit for bit.
            BitVec syndrome = engine.lane_outputs_cone(
                *sp, golden_.outputs[t], static_cast<unsigned>(lane));
            syndrome ^= golden_.outputs[t];
            sigs[lane] = syndrome.hash();
          }
        }
      }
      classified |= mismatch;
    }

    Word differs;
    if constexpr (View::kLatchThinning) {
      if (thin_now) {
        // Latching-window thinning, fused into the cone step: build the
        // per-cone-FF suppression words for the lanes injecting a
        // sub-full-width pulse this cycle, then step with those lanes
        // latching golden where the pulse missed the setup window.
        auto& suppress = thin_in<Word>(scratch);
        suppress.assign(sp->dff_indices.size(), T::zero());
        for (std::size_t c = inject_begin; c < cursor; ++c) {
          const std::uint32_t lane = order[c];
          if (!view.lane_thins(lane)) continue;
          for (std::size_t k = 0; k < sp->dff_indices.size(); ++k) {
            if (!view.latches(lane, sp->dff_indices[k])) {
              suppress[k] |= T::lane_bit(lane);
            }
          }
        }
        differs = engine.step_cone_mismatch_thinned(*sp, image.states(t + 1),
                                                    suppress);
      } else {
        differs = engine.step_cone_mismatch(*sp, image.states(t + 1));
      }
    } else {
      differs = engine.step_cone_mismatch(*sp, image.states(t + 1));
    }
    if constexpr (View::kRetireOnConvergence) {
      const Word converged = injected & ~classified & ~differs;
      if (T::any(converged)) {
        for (std::size_t lane = 0; lane < group_size; ++lane) {
          if (T::test(converged, static_cast<unsigned>(lane))) {
            outcomes[lane].cls = FaultClass::kSilent;
            outcomes[lane].converge_cycle = static_cast<std::uint32_t>(t + 1);
          }
        }
        classified |= converged;
      }
    } else if (t + 1 == num_cycles) {
      // Only cone FFs can hold non-golden state, so the cone-restricted
      // mismatch is the full final-state comparison.
      final_differs = differs;
    }

    if (classified == group_mask) {
      return;
    }

    // Narrowing checkpoint: whenever any lane classified since the last
    // checkpoint (cheap now that re-derivation filters the current
    // sub-program, and crucial during the post-injection burst when big
    // cones shed most of their lanes), and every kNarrowInterval cycles to
    // catch divergence that shrinks without classifying.
    const std::size_t active = group_size - T::count(classified);
    if (active <= narrow_below || t + 1 >= next_narrow_check) {
      narrow_below = active - 1;
      next_narrow_check = t + 1 + kNarrowInterval;
      // Current divergence fingerprint: lanes whose bound is their seed
      // cone (waiting lanes; every unclassified lane for every-cycle
      // models) contribute their tail bit, active lanes contribute every
      // cone FF whose state word differs from golden (only cone FFs can
      // diverge).
      std::vector<std::uint64_t>& now = scratch.diverged_now;
      now.assign(ff_words + lane_words, 0);
      for (std::size_t lane = 0; lane < group_size; ++lane) {
        bool tail;
        if constexpr (View::kOverlayEveryCycle) {
          tail = !T::test(classified, static_cast<unsigned>(lane));
        } else {
          tail = !T::test(injected, static_cast<unsigned>(lane));
        }
        if (tail) {
          now[ff_words + (lane >> 6)] |= std::uint64_t{1} << (lane & 63);
        }
      }
      const Word active_lanes = injected & ~classified;
      const auto golden_state = image.states(t + 1);
      for (const std::uint32_t i : sp->dff_indices) {
        if (T::any((engine.state_word(i) ^ golden_state[i]) & active_lanes)) {
          now[i >> 6] |= std::uint64_t{1} << (i & 63);
        }
      }
      if (now != diverged) {
        // Union re-derivation only pays off when the set strictly shrank.
        // When divergence *spreads*, cone closure guarantees the current
        // mask still covers it (a newly diverged FF is a cone member, and a
        // cone member's own cone is inside the cone), so tracking the new
        // set without any union work is exact.
        bool maybe_shrunk = true;
        for (std::size_t w = 0; w < ff_words + lane_words; ++w) {
          if ((now[w] & ~diverged[w]) != 0) {
            maybe_shrunk = false;
            break;
          }
        }
        diverged = now;
        if (maybe_shrunk) {
          next_mask.assign(mask.size(), 0);
          for (std::size_t w = 0; w < ff_words; ++w) {
            std::uint64_t bits = diverged[w];
            while (bits != 0) {
              const std::size_t ff =
                  w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
              bits &= bits - 1;
              view.union_ff_cone(next_mask, ff);
            }
          }
          for (std::size_t w = 0; w < lane_words; ++w) {
            std::uint64_t bits = diverged[ff_words + w];
            while (bits != 0) {
              const std::size_t lane =
                  w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
              bits &= bits - 1;
              view.union_cone(next_mask, lane);
            }
          }
          if (next_mask != mask) {
            mask.swap(next_mask);
            const std::uint64_t narrow_begin_ns =
                scratch.telemetry != nullptr ? now_ns() : 0;
            run_kernel_->build_subprogram(mask, scratch.narrow_sp[narrow_buf],
                                          sp, config_.levelized_arena);
            if (scratch.telemetry != nullptr) {
              scratch.telemetry->narrow_slice(narrow_begin_ns, now_ns());
            }
            sp = &scratch.narrow_sp[narrow_buf];
            narrow_buf ^= 1u;
            ++scratch.narrowings;
            overlay_dirty = true;
          }
        }
      }
    }

    if (!T::any(injected & ~classified) && cursor < order.size()) {
      const std::uint32_t next_cycle = view.cycle(order[cursor]);
      if (next_cycle > t + 1) {
        engine.broadcast_state(golden_.states[next_cycle]);
        t = next_cycle - 1;
      }
    }
  }
  if constexpr (!View::kRetireOnConvergence) {
    // Test-pattern mapping for undetected permanent faults (see
    // run_group_full).
    const Word benign = group_mask & ~classified & ~final_differs;
    for (std::size_t lane = 0; lane < group_size; ++lane) {
      if (T::test(benign, static_cast<unsigned>(lane))) {
        outcomes[lane].cls = FaultClass::kSilent;
      }
    }
  }
}

}  // namespace femu
