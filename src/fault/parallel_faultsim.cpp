#include "fault/parallel_faultsim.h"

#include <algorithm>

#include "common/error.h"
#include "common/timer.h"

namespace femu {

ParallelFaultSimulator::ParallelFaultSimulator(const Circuit& circuit,
                                               const Testbench& testbench)
    : circuit_(circuit),
      testbench_(testbench),
      golden_(capture_golden(circuit, testbench.vectors())),
      sim_(circuit) {
  FEMU_CHECK(testbench.input_width() == circuit.num_inputs(),
             "testbench width ", testbench.input_width(), " != circuit PI ",
             circuit.num_inputs());
}

CampaignResult ParallelFaultSimulator::run(std::span<const Fault> faults) {
  WallTimer timer;
  last_run_eval_cycles_ = 0;
  std::vector<FaultOutcome> outcomes(faults.size());
  for (std::size_t begin = 0; begin < faults.size(); begin += 64) {
    const std::size_t count = std::min<std::size_t>(64, faults.size() - begin);
    run_group(faults.subspan(begin, count),
              std::span<FaultOutcome>(outcomes).subspan(begin, count));
  }
  last_run_seconds_ = timer.elapsed_seconds();
  return CampaignResult(std::vector<Fault>(faults.begin(), faults.end()),
                        std::move(outcomes));
}

void ParallelFaultSimulator::run_group(std::span<const Fault> faults,
                                       std::span<FaultOutcome> outcomes) {
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::uint64_t group_mask =
      faults.size() == 64 ? ~std::uint64_t{0}
                          : ((std::uint64_t{1} << faults.size()) - 1);

  std::uint32_t first_cycle = kNoCycle;
  for (const Fault& fault : faults) {
    FEMU_CHECK(fault.cycle < num_cycles, "fault cycle ", fault.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(fault.ff_index < circuit_.num_dffs(), "fault FF ",
               fault.ff_index, " out of range");
    first_cycle = std::min(first_cycle, fault.cycle);
  }

  // Default: latent (overwritten on detection/convergence below).
  for (auto& outcome : outcomes) {
    outcome = FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle};
  }

  sim_.broadcast_state(golden_.states[first_cycle]);
  std::uint64_t injected = 0;
  std::uint64_t classified = 0;

  for (std::size_t t = first_cycle; t < num_cycles; ++t) {
    // Inject the lanes whose cycle has arrived (flip happens in state(t),
    // before cycle t evaluates — the SEU hits the new state).
    for (std::size_t lane = 0; lane < faults.size(); ++lane) {
      if (faults[lane].cycle == t) {
        sim_.flip_state_bit(faults[lane].ff_index,
                            static_cast<unsigned>(lane));
        injected |= std::uint64_t{1} << lane;
      }
    }

    sim_.eval(testbench_.vector(t));
    ++last_run_eval_cycles_;

    const std::uint64_t mismatch =
        sim_.output_mismatch_lanes(golden_.outputs[t]) & injected &
        ~classified;
    if (mismatch != 0) {
      for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        if ((mismatch >> lane) & 1) {
          outcomes[lane].cls = FaultClass::kFailure;
          outcomes[lane].detect_cycle = static_cast<std::uint32_t>(t);
        }
      }
      classified |= mismatch;
    }

    sim_.step();

    const std::uint64_t differs = sim_.state_mismatch_lanes(golden_.states[t + 1]);
    const std::uint64_t converged = injected & ~classified & ~differs;
    if (converged != 0) {
      for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        if ((converged >> lane) & 1) {
          outcomes[lane].cls = FaultClass::kSilent;
          outcomes[lane].converge_cycle = static_cast<std::uint32_t>(t + 1);
        }
      }
      classified |= converged;
    }

    if (classified == group_mask) {
      return;  // every lane graded — skip the testbench tail entirely
    }

    // Fast-forward: when every already-injected lane is graded, the pending
    // lanes are bit-identical to the golden machine, so jump straight to the
    // next injection cycle from the golden state image.
    if ((injected & ~classified) == 0 && injected != group_mask) {
      std::uint32_t next_cycle = kNoCycle;
      for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        if (((injected >> lane) & 1) == 0) {
          next_cycle = std::min(next_cycle, faults[lane].cycle);
        }
      }
      if (next_cycle > t + 1) {
        sim_.broadcast_state(golden_.states[next_cycle]);
        t = next_cycle - 1;  // loop increment lands on next_cycle
      }
    }
  }
  // Lanes never classified stay latent (their final state differs and no
  // output ever deviated).
}

}  // namespace femu
