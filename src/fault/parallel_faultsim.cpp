#include "fault/parallel_faultsim.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <numeric>
#include <thread>

#include "common/error.h"
#include "common/timer.h"
#include "sim/parallel_sim.h"

namespace femu {

ParallelFaultSimulator::ParallelFaultSimulator(const Circuit& circuit,
                                               const Testbench& testbench,
                                               CampaignConfig config)
    : circuit_(circuit),
      testbench_(testbench),
      config_(config),
      golden_(capture_golden(circuit, testbench.vectors())) {
  FEMU_CHECK(testbench.input_width() == circuit.num_inputs(),
             "testbench width ", testbench.input_width(), " != circuit PI ",
             circuit.num_inputs());
  FEMU_CHECK(
      config_.backend == SimBackend::kCompiled ||
          config_.lanes == LaneWidth::k64,
      "interpreted backend supports 64 lanes only");
  const bool cones_for_eval =
      config_.cone_restricted && config_.backend == SimBackend::kCompiled;
  if (config_.backend == SimBackend::kCompiled) {
    kernel_ = compile_kernel(circuit);
  }
  // The cone-affine schedule only needs the cones, not the kernel, so it
  // works (as a grouping heuristic) even on the interpreted backend.
  if (cones_for_eval || config_.schedule == CampaignSchedule::kConeAffine) {
    cones_ = std::make_unique<FanoutCones>(circuit);
    const std::vector<std::uint32_t> order =
        cone_affine_ff_order(*cones_, lane_count(config_.lanes));
    ff_affinity_rank_.resize(order.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      ff_affinity_rank_[order[rank]] = static_cast<std::uint32_t>(rank);
    }
  }
  if (cones_for_eval) {
    slot_trace_ = capture_golden_slots(*kernel_, testbench.vectors());
  }
  // Golden trace + stimuli pre-broadcast once per campaign engine; shared
  // read-only by every worker thread.
  if (config_.lanes == LaneWidth::k64) {
    image64_ = GoldenWordImage<std::uint64_t>(golden_, testbench.vectors());
  } else {
    image256_ = GoldenWordImage<Word256>(golden_, testbench.vectors());
  }
}

std::vector<std::uint32_t> ParallelFaultSimulator::schedule_permutation(
    std::span<const Fault> faults) const {
  std::vector<std::uint32_t> perm(faults.size());
  std::iota(perm.begin(), perm.end(), 0u);
  if (config_.schedule == CampaignSchedule::kAsGiven) {
    return perm;
  }
  const bool affine = config_.schedule == CampaignSchedule::kConeAffine &&
                      !ff_affinity_rank_.empty();
  // Sort on a packed 64-bit key (stability comes from the low index bits).
  // Cone-affine is block-major: the affinity order is a concatenation of
  // lane-width FF blocks with small cone unions; keying by (block, cycle,
  // rank) lays out each block's faults cycle-major and back to back, so a
  // lane group is exactly one block at one cycle — same small cone union,
  // single injection cycle — instead of drifting across block boundaries.
  const std::uint64_t block = lane_count(config_.lanes);
  // The affinity order leads with the partial block (num_ffs mod width), so
  // rank-to-block mapping pads the front to keep later blocks width-aligned.
  const std::uint64_t pad =
      affine ? (block - ff_affinity_rank_.size() % block) % block : 0;
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t num_ffs = circuit_.num_dffs();
  std::vector<std::uint64_t> keys(faults.size());
  std::uint64_t max_key = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = faults[i];
    std::uint64_t key;
    if (affine) {
      // Dense bucket id (block, cycle, rank-within-block): small enough for
      // a counting sort over the whole campaign.
      const std::uint64_t rank = ff_affinity_rank_[f.ff_index] + pad;
      key = (rank / block * num_cycles + f.cycle) * block + rank % block;
    } else {
      key = std::uint64_t{f.cycle} * num_ffs + f.ff_index;
    }
    keys[i] = key;
    max_key = std::max(max_key, key);
  }
  // Counting sort: O(n + buckets), stable by construction. The bucket space
  // is at most cycles x FFs (padded) — about the size of the complete fault
  // list — but a sparse sample of a huge campaign could make it balloon, so
  // fall back to a comparison sort when buckets would dwarf the fault count.
  if (max_key <= 64 * keys.size() + 4096) {
    std::vector<std::uint32_t> counts(max_key + 2, 0);
    for (const std::uint64_t k : keys) ++counts[k + 1];
    for (std::size_t k = 1; k < counts.size(); ++k) {
      counts[k] += counts[k - 1];
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      perm[counts[keys[i]]++] = static_cast<std::uint32_t>(i);
    }
  } else {
    std::sort(perm.begin(), perm.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return std::pair{keys[x], x} < std::pair{keys[y], y};
              });
  }
  return perm;
}

CampaignResult ParallelFaultSimulator::run(std::span<const Fault> faults) {
  WallTimer timer;
  const std::size_t num_cycles = testbench_.num_cycles();
  for (const Fault& fault : faults) {
    FEMU_CHECK(fault.cycle < num_cycles, "fault cycle ", fault.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(fault.ff_index < circuit_.num_dffs(), "fault FF ",
               fault.ff_index, " out of range");
  }

  std::vector<FaultOutcome> outcomes(faults.size());

  // Apply the schedule: run over a permuted view, scatter outcomes back
  // through the inverse permutation so results align with caller order.
  const std::vector<std::uint32_t> perm = schedule_permutation(faults);
  bool permuted = false;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) {
      permuted = true;
      break;
    }
  }
  std::vector<Fault> scheduled;
  std::vector<FaultOutcome> scheduled_outcomes;
  std::span<const Fault> run_faults = faults;
  std::span<FaultOutcome> run_outcomes(outcomes);
  if (permuted) {
    scheduled.reserve(faults.size());
    for (const std::uint32_t idx : perm) scheduled.push_back(faults[idx]);
    scheduled_outcomes.resize(faults.size());
    run_faults = scheduled;
    run_outcomes = scheduled_outcomes;
  }

  const std::size_t width = lane_count(config_.lanes);
  const std::size_t num_groups = (faults.size() + width - 1) / width;
  unsigned workers = config_.num_threads != 0
                         ? config_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(num_groups, 1)));
  last_run_threads_ = workers;

  const bool cone = config_.cone_restricted && kernel_ != nullptr;
  if (config_.lanes == LaneWidth::k64 && kernel_) {
    const auto make_engine = [this] {
      return LaneEngine<std::uint64_t>(kernel_);
    };
    const auto run_group = [&](LaneEngine<std::uint64_t>& engine,
                               std::span<const Fault> group_faults,
                               std::span<FaultOutcome> group_outcomes,
                               WorkerScratch& scratch) {
      if (cone) {
        run_group_cone(engine, image64_, group_faults, group_outcomes,
                       scratch);
      } else {
        run_group_full(engine, image64_, group_faults, group_outcomes,
                       scratch);
      }
    };
    run_sharded<std::uint64_t>(make_engine, run_group, run_faults,
                               run_outcomes, workers);
  } else if (config_.lanes == LaneWidth::k64) {
    const auto make_engine = [this] {
      return ParallelSimulator(circuit_, SimBackend::kInterpreted);
    };
    const auto run_group = [&](ParallelSimulator& engine,
                               std::span<const Fault> group_faults,
                               std::span<FaultOutcome> group_outcomes,
                               WorkerScratch& scratch) {
      run_group_full(engine, image64_, group_faults, group_outcomes, scratch);
    };
    run_sharded<std::uint64_t>(make_engine, run_group, run_faults,
                               run_outcomes, workers);
  } else {
    const auto make_engine = [this] { return LaneEngine<Word256>(kernel_); };
    const auto run_group = [&](LaneEngine<Word256>& engine,
                               std::span<const Fault> group_faults,
                               std::span<FaultOutcome> group_outcomes,
                               WorkerScratch& scratch) {
      if (cone) {
        run_group_cone(engine, image256_, group_faults, group_outcomes,
                       scratch);
      } else {
        run_group_full(engine, image256_, group_faults, group_outcomes,
                       scratch);
      }
    };
    run_sharded<Word256>(make_engine, run_group, run_faults, run_outcomes,
                         workers);
  }

  if (permuted) {
    for (std::size_t i = 0; i < perm.size(); ++i) {
      outcomes[perm[i]] = scheduled_outcomes[i];
    }
  }

  last_run_seconds_ = timer.elapsed_seconds();
  return CampaignResult(std::vector<Fault>(faults.begin(), faults.end()),
                        std::move(outcomes));
}

template <typename Word, typename MakeEngine, typename RunGroup>
void ParallelFaultSimulator::run_sharded(const MakeEngine& make_engine,
                                         const RunGroup& run_group,
                                         std::span<const Fault> faults,
                                         std::span<FaultOutcome> outcomes,
                                         unsigned num_workers) {
  const std::size_t width = LaneTraits<Word>::kLanes;
  const std::size_t num_groups = (faults.size() + width - 1) / width;

  const auto group_span = [&](std::size_t g) {
    const std::size_t begin = g * width;
    const std::size_t count = std::min(width, faults.size() - begin);
    return std::pair{faults.subspan(begin, count),
                     outcomes.subspan(begin, count)};
  };

  if (num_workers <= 1 || num_groups <= 1) {
    auto engine = make_engine();
    WorkerScratch scratch;
    for (std::size_t g = 0; g < num_groups; ++g) {
      const auto [group_faults, group_outcomes] = group_span(g);
      run_group(engine, group_faults, group_outcomes, scratch);
    }
    last_run_eval_cycles_ = scratch.eval_cycles;
    last_run_eval_instrs_ = scratch.eval_instrs;
    last_run_narrowings_ = scratch.narrowings;
    return;
  }

  // Work-stealing pool: each worker owns one engine and one scratch (sharing
  // the read-only kernel, cones, slot trace and golden images) and pulls
  // group indices from an atomic counter. Each group writes a disjoint
  // outcome slice, so the result is identical for any worker count or
  // scheduling order.
  std::atomic<std::size_t> next_group{0};
  std::atomic<std::uint64_t> total_eval_cycles{0};
  std::atomic<std::uint64_t> total_eval_instrs{0};
  std::atomic<std::uint64_t> total_narrowings{0};
  const auto worker = [&] {
    auto engine = make_engine();
    WorkerScratch scratch;
    for (std::size_t g = next_group.fetch_add(1, std::memory_order_relaxed);
         g < num_groups;
         g = next_group.fetch_add(1, std::memory_order_relaxed)) {
      const auto [group_faults, group_outcomes] = group_span(g);
      run_group(engine, group_faults, group_outcomes, scratch);
    }
    total_eval_cycles.fetch_add(scratch.eval_cycles,
                                std::memory_order_relaxed);
    total_eval_instrs.fetch_add(scratch.eval_instrs,
                                std::memory_order_relaxed);
    total_narrowings.fetch_add(scratch.narrowings, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(num_workers - 1);
  for (unsigned i = 1; i < num_workers; ++i) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread is worker 0
  for (auto& t : pool) {
    t.join();
  }
  last_run_eval_cycles_ = total_eval_cycles.load();
  last_run_eval_instrs_ = total_eval_instrs.load();
  last_run_narrowings_ = total_narrowings.load();
}

void ParallelFaultSimulator::sort_group_order(std::span<const Fault> faults,
                                              WorkerScratch& scratch) const {
  // Injection schedule sorted by cycle: injections then advance a cursor
  // instead of rescanning all lanes per cycle, and the cursor's head is the
  // next injection cycle the fast-forward path jumps to. The index vector is
  // per-worker scratch — reused across groups, no per-group allocation.
  scratch.order.resize(faults.size());
  std::iota(scratch.order.begin(), scratch.order.end(), 0u);
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              return faults[x].cycle < faults[y].cycle;
            });
}

template <typename Engine, typename Word>
void ParallelFaultSimulator::run_group_full(Engine& engine,
                                            const GoldenWordImage<Word>& image,
                                            std::span<const Fault> faults,
                                            std::span<FaultOutcome> outcomes,
                                            WorkerScratch& scratch) const {
  using T = LaneTraits<Word>;
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t program_size =
      kernel_ ? kernel_->program().size() : circuit_.num_gates();
  const Word group_mask = T::first_n(faults.size());

  sort_group_order(faults, scratch);
  const std::vector<std::uint32_t>& order = scratch.order;
  std::size_t cursor = 0;

  // Default: latent (overwritten on detection/convergence below).
  for (auto& outcome : outcomes) {
    outcome = FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle};
  }

  const std::uint32_t first_cycle = faults[order.front()].cycle;
  engine.broadcast_state(golden_.states[first_cycle]);
  Word injected = T::zero();
  Word classified = T::zero();

  for (std::size_t t = first_cycle; t < num_cycles; ++t) {
    // Inject the lanes whose cycle has arrived (flip happens in state(t),
    // before cycle t evaluates — the SEU hits the new state).
    while (cursor < order.size() && faults[order[cursor]].cycle == t) {
      const std::uint32_t lane = order[cursor];
      engine.flip_state_bit(faults[lane].ff_index, lane);
      injected |= T::lane_bit(lane);
      ++cursor;
    }

    engine.eval_words(image.inputs(t));
    ++scratch.eval_cycles;
    scratch.eval_instrs += program_size;

    const Word mismatch =
        engine.output_mismatch_lanes(image.outputs(t)) & injected &
        ~classified;
    if (T::any(mismatch)) {
      for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        if (T::test(mismatch, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kFailure;
          outcomes[lane].detect_cycle = static_cast<std::uint32_t>(t);
        }
      }
      classified |= mismatch;
    }

    engine.step();

    const Word differs = engine.state_mismatch_lanes(image.states(t + 1));
    const Word converged = injected & ~classified & ~differs;
    if (T::any(converged)) {
      for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        if (T::test(converged, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kSilent;
          outcomes[lane].converge_cycle = static_cast<std::uint32_t>(t + 1);
        }
      }
      classified |= converged;
    }

    if (classified == group_mask) {
      return;  // every lane graded — skip the testbench tail entirely
    }

    // Fast-forward: when every already-injected lane is graded, the pending
    // lanes are bit-identical to the golden machine, so jump straight to the
    // next injection cycle (the cursor head) from the golden state image.
    if (!T::any(injected & ~classified) && cursor < order.size()) {
      const std::uint32_t next_cycle = faults[order[cursor]].cycle;
      if (next_cycle > t + 1) {
        engine.broadcast_state(golden_.states[next_cycle]);
        t = next_cycle - 1;  // loop increment lands on next_cycle
      }
    }
  }
  // Lanes never classified stay latent (their final state differs and no
  // output ever deviated).
}

template <typename Word>
void ParallelFaultSimulator::run_group_cone(LaneEngine<Word>& engine,
                                            const GoldenWordImage<Word>& image,
                                            std::span<const Fault> faults,
                                            std::span<FaultOutcome> outcomes,
                                            WorkerScratch& scratch) const {
  using T = LaneTraits<Word>;
  const std::size_t num_cycles = testbench_.num_cycles();
  const Word group_mask = T::first_n(faults.size());

  sort_group_order(faults, scratch);
  const std::vector<std::uint32_t>& order = scratch.order;
  std::size_t cursor = 0;

  for (auto& outcome : outcomes) {
    outcome = FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle};
  }

  // Initial cone: union of every group fault's fanout cone. Under the
  // block-major cone-affine schedule consecutive groups carry the same FF
  // block, so the derived initial sub-program is cached in the worker
  // scratch keyed on the group's FF set and rebuilt only when the block
  // changes.
  const std::size_t ff_words = (circuit_.num_dffs() + 63) / 64;
  std::vector<std::uint64_t>& group_ffs = scratch.group_ffs;
  group_ffs.assign(ff_words, 0);
  for (const Fault& fault : faults) {
    group_ffs[fault.ff_index >> 6] |= std::uint64_t{1}
                                      << (fault.ff_index & 63);
  }
  if (!scratch.initial_valid || group_ffs != scratch.cached_ffs) {
    scratch.cached_ffs = group_ffs;
    scratch.initial_mask.assign(cones_->words_per_cone(), 0);
    for (const Fault& fault : faults) {
      cones_->union_into(scratch.initial_mask, fault.ff_index);
    }
    kernel_->build_subprogram(scratch.initial_mask, scratch.initial_sp);
    scratch.initial_valid = true;
  }
  std::vector<std::uint64_t>& mask = scratch.cone_mask;
  mask = scratch.initial_mask;
  const CompiledKernel::ConeSubProgram* sp = &scratch.initial_sp;
  unsigned narrow_buf = 0;  // next narrow_sp buffer to write (ping-pong)

  // The sub-program is re-derived (narrowed) at checkpoints — whenever any
  // lane classified since the last checkpoint, and every kNarrowInterval
  // cycles — from what is *currently* diverged: the cones of the flip-flops whose lane
  // state differs from golden in any active lane, plus the cones of lanes
  // still waiting to inject. Divergence can only move inside the structural
  // closure, so the re-derived mask is always a subset of the current one
  // and the sub-program only ever shrinks; latent faults whose divergence
  // parks in a few dead-end flip-flops stop paying for the full injection
  // cone. The diverged-FF set is remembered between checkpoints: once the
  // tail stabilises (same FFs diverged, typical for latent survivors) the
  // checkpoint is a bitset compare, with no union or derivation work.
  std::size_t narrow_below = faults.size() - 1;
  constexpr std::size_t kNarrowInterval = 4;
  std::vector<std::uint64_t>& next_mask = scratch.narrow_mask;
  std::vector<std::uint64_t>& diverged = scratch.diverged_ffs;
  // Seed with the group FF set — the bound the initial sub-program was
  // derived from.
  diverged = group_ffs;

  const std::uint32_t first_cycle = faults[order.front()].cycle;
  engine.broadcast_state(golden_.states[first_cycle]);
  Word injected = T::zero();
  Word classified = T::zero();
  std::size_t next_narrow_check = first_cycle + kNarrowInterval;

  for (std::size_t t = first_cycle; t < num_cycles; ++t) {
    while (cursor < order.size() && faults[order[cursor]].cycle == t) {
      const std::uint32_t lane = order[cursor];
      engine.flip_state_bit(faults[lane].ff_index, lane);
      injected |= T::lane_bit(lane);
      ++cursor;
    }

    engine.eval_cone(*sp, slot_trace_.at(t));
    ++scratch.eval_cycles;
    scratch.eval_instrs += sp->instrs.size();

    const Word mismatch =
        engine.output_mismatch_lanes_cone(*sp, image.outputs(t)) & injected &
        ~classified;
    if (T::any(mismatch)) {
      for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        if (T::test(mismatch, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kFailure;
          outcomes[lane].detect_cycle = static_cast<std::uint32_t>(t);
        }
      }
      classified |= mismatch;
    }

    const Word differs = engine.step_cone_mismatch(*sp, image.states(t + 1));
    const Word converged = injected & ~classified & ~differs;
    if (T::any(converged)) {
      for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        if (T::test(converged, static_cast<unsigned>(lane))) {
          outcomes[lane].cls = FaultClass::kSilent;
          outcomes[lane].converge_cycle = static_cast<std::uint32_t>(t + 1);
        }
      }
      classified |= converged;
    }

    if (classified == group_mask) {
      return;
    }

    // Narrowing checkpoint: whenever any lane classified since the last
    // checkpoint (cheap now that re-derivation filters the current
    // sub-program, and crucial during the post-injection burst when big
    // cones shed most of their lanes), and every kNarrowInterval cycles to
    // catch divergence that shrinks without classifying.
    const std::size_t active = faults.size() - T::count(classified);
    if (active <= narrow_below || t + 1 >= next_narrow_check) {
      narrow_below = active - 1;
      next_narrow_check = t + 1 + kNarrowInterval;
      // Currently diverged FFs: lanes still waiting to inject contribute
      // their injection FF, active lanes contribute every cone FF whose
      // state word differs from golden (only cone FFs can diverge).
      std::vector<std::uint64_t>& now = scratch.diverged_now;
      now.assign(ff_words, 0);
      for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        if (!T::test(injected, static_cast<unsigned>(lane))) {
          const std::uint32_t ff = faults[lane].ff_index;
          now[ff >> 6] |= std::uint64_t{1} << (ff & 63);
        }
      }
      const Word active_lanes = injected & ~classified;
      const auto golden_state = image.states(t + 1);
      for (const std::uint32_t i : sp->dff_indices) {
        if (T::any((engine.state_word(i) ^ golden_state[i]) & active_lanes)) {
          now[i >> 6] |= std::uint64_t{1} << (i & 63);
        }
      }
      if (now != diverged) {
        // Union re-derivation only pays off when the set strictly shrank.
        // When divergence *spreads*, cone closure guarantees the current
        // mask still covers it (a newly diverged FF is a cone member, and a
        // cone member's own cone is inside the cone), so tracking the new
        // set without any union work is exact.
        bool maybe_shrunk = true;
        for (std::size_t w = 0; w < ff_words; ++w) {
          if ((now[w] & ~diverged[w]) != 0) {
            maybe_shrunk = false;
            break;
          }
        }
        diverged = now;
        if (maybe_shrunk) {
          next_mask.assign(mask.size(), 0);
          for (std::size_t w = 0; w < ff_words; ++w) {
            std::uint64_t bits = diverged[w];
            while (bits != 0) {
              const std::size_t ff =
                  w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
              bits &= bits - 1;
              cones_->union_into(next_mask, ff);
            }
          }
          if (next_mask != mask) {
            mask.swap(next_mask);
            kernel_->build_subprogram(mask, scratch.narrow_sp[narrow_buf],
                                      sp);
            sp = &scratch.narrow_sp[narrow_buf];
            narrow_buf ^= 1u;
            ++scratch.narrowings;
          }
        }
      }
    }

    if (!T::any(injected & ~classified) && cursor < order.size()) {
      const std::uint32_t next_cycle = faults[order[cursor]].cycle;
      if (next_cycle > t + 1) {
        engine.broadcast_state(golden_.states[next_cycle]);
        t = next_cycle - 1;
      }
    }
  }
}

}  // namespace femu
