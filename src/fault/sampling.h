#pragma once

#include <cstddef>
#include <span>

#include "fault/campaign_result.h"
#include "fault/set_model.h"

namespace femu {

/// Interval estimate of a fault-class proportion from a sampled campaign.
/// Statistical fault injection is the standard way to grade designs whose
/// complete fault list (N_ff x T) is too large even for emulation; these
/// helpers quantify what a sample buys.
struct ProportionEstimate {
  double fraction = 0.0;  ///< point estimate (hits / n)
  double low = 0.0;       ///< Wilson score interval lower bound
  double high = 0.0;      ///< Wilson score interval upper bound

  [[nodiscard]] double half_width() const { return (high - low) / 2.0; }
};

/// Wilson score interval for `hits` successes out of `n` trials at the given
/// normal quantile (1.96 = 95% confidence). Well-behaved near 0 and 1,
/// unlike the naive normal approximation.
[[nodiscard]] ProportionEstimate estimate_proportion(std::size_t hits,
                                                     std::size_t n,
                                                     double z = 1.96);

/// Smallest sample size guaranteeing a +-`margin` confidence interval for
/// any true proportion (worst case p = 0.5): n = z^2 / (4 margin^2).
[[nodiscard]] std::size_t required_sample_size(double margin,
                                               double z = 1.96);

/// Wilson score interval for a *weighted* sample: `fraction` is the
/// weighted point estimate and `n_eff` the effective sample size (Kish:
/// (Σw)² / Σw²), which is what unequal weights shrink the evidence to. With
/// all weights equal this reduces exactly to estimate_proportion.
[[nodiscard]] ProportionEstimate estimate_proportion_weighted(double fraction,
                                                              double n_eff,
                                                              double z = 1.96);

/// Interval estimates for all three fault classes of a (sampled) campaign.
struct SampledGrading {
  ProportionEstimate failure;
  ProportionEstimate latent;
  ProportionEstimate silent;
  std::size_t sample_size = 0;
  /// Effective sample size after weighting — equals sample_size for an
  /// unweighted estimate, smaller when weights are unequal.
  double effective_sample_size = 0.0;
};

[[nodiscard]] SampledGrading estimate_grading(const CampaignResult& result,
                                              double z = 1.96);

/// Interval estimates for outcomes carrying unequal population weights:
/// weighted point estimates, Wilson intervals at the Kish effective sample
/// size. `weights` parallels `outcomes`.
[[nodiscard]] SampledGrading estimate_weighted_grading(
    std::span<const FaultOutcome> outcomes, std::span<const double> weights,
    double z = 1.96);

/// Interval estimates of a sampled representative-site SET campaign over
/// the **all-sites population**: each graded representative stands for its
/// whole equivalence class, so its outcome is weighted by the class size
/// (faults on non-representative sites weigh 1) and the interval expands
/// through the effective sample size accordingly. Complements
/// expand_collapsed_result, which gives the same weighting as exact counts
/// for complete campaigns — this gives the sampling-uncertainty view.
[[nodiscard]] SampledGrading estimate_set_grading(
    const SetSites& sites, const SetCampaignResult& rep_result,
    double z = 1.96);

}  // namespace femu
