#pragma once

#include <cstddef>

#include "fault/campaign_result.h"

namespace femu {

/// Interval estimate of a fault-class proportion from a sampled campaign.
/// Statistical fault injection is the standard way to grade designs whose
/// complete fault list (N_ff x T) is too large even for emulation; these
/// helpers quantify what a sample buys.
struct ProportionEstimate {
  double fraction = 0.0;  ///< point estimate (hits / n)
  double low = 0.0;       ///< Wilson score interval lower bound
  double high = 0.0;      ///< Wilson score interval upper bound

  [[nodiscard]] double half_width() const { return (high - low) / 2.0; }
};

/// Wilson score interval for `hits` successes out of `n` trials at the given
/// normal quantile (1.96 = 95% confidence). Well-behaved near 0 and 1,
/// unlike the naive normal approximation.
[[nodiscard]] ProportionEstimate estimate_proportion(std::size_t hits,
                                                     std::size_t n,
                                                     double z = 1.96);

/// Smallest sample size guaranteeing a +-`margin` confidence interval for
/// any true proportion (worst case p = 0.5): n = z^2 / (4 margin^2).
[[nodiscard]] std::size_t required_sample_size(double margin,
                                               double z = 1.96);

/// Interval estimates for all three fault classes of a (sampled) campaign.
struct SampledGrading {
  ProportionEstimate failure;
  ProportionEstimate latent;
  ProportionEstimate silent;
  std::size_t sample_size = 0;
};

[[nodiscard]] SampledGrading estimate_grading(const CampaignResult& result,
                                              double z = 1.96);

}  // namespace femu
