#include "fault/journal.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/error.h"
#include "common/strings.h"
#include "common/timer.h"
#include "fault/model_traits.h"
#include "netlist/diff.h"

namespace femu {

namespace {

constexpr char kFileMagic[8] = {'F', 'E', 'M', 'U', 'J', 'R', 'N', 'L'};
constexpr std::uint32_t kRecordMagic = 0x4C4E524Au;  // "JRNL"
constexpr std::uint32_t kFormatVersion = 1;

constexpr std::uint8_t kRecHeader = 1;
constexpr std::uint8_t kRecGroup = 2;
constexpr std::uint8_t kRecComplete = 3;

// Bytes per group entry: u32 index, u8 class, u32 detect, u32 converge,
// u64 signature.
constexpr std::size_t kEntryBytes = 4 + 1 + 4 + 4 + 8;

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof v);
  std::memcpy(out.data() + at, &v, sizeof v);
}

[[nodiscard]] std::uint64_t record_checksum(
    std::uint8_t type, const std::vector<std::uint8_t>& payload) {
  Fnv64 h;
  h.u8(type);
  h.u64(payload.size());
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

/// Bounds-checked cursor over the loaded journal bytes.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  [[nodiscard]] bool take(void* out, std::size_t len) {
    if (size - pos < len) {
      return false;
    }
    std::memcpy(out, data + pos, len);
    pos += len;
    return true;
  }
  template <typename T>
  [[nodiscard]] bool get(T& v) {
    return take(&v, sizeof v);
  }
};

void hash_bitvec(Fnv64& h, const BitVec& v) {
  h.u64(v.size());
  for (const std::uint64_t w : v.words()) {
    h.u64(w);
  }
}

[[nodiscard]] std::uint64_t config_rule_hash() {
  // Every CampaignConfig knob is outcome-invariant (see the fingerprint
  // doc); this hashes only the invariance rule's version so a future
  // outcome-affecting knob can bump it.
  Fnv64 h;
  h.str("campaign-config:outcome-invariant:v1");
  return h.digest();
}

template <typename FaultT>
[[nodiscard]] CampaignFingerprint make_fingerprint(
    const Circuit& circuit, const Testbench& tb, std::span<const FaultT> faults,
    FaultModel model) {
  CampaignFingerprint fp;
  fp.circuit = circuit_structure_hash(circuit);
  fp.testbench = testbench_content_hash(tb);
  fp.faults = fault_list_hash(faults);
  Fnv64 m;
  m.str(fault_model_descriptor(model));
  fp.model = m.digest();
  fp.config = config_rule_hash();
  return fp;
}

}  // namespace

// ---- fingerprints ----------------------------------------------------------

std::uint64_t campaign_config_rule_hash() { return config_rule_hash(); }

std::uint64_t circuit_structure_hash(const Circuit& circuit) {
  Fnv64 h;
  h.str("circuit:v1");
  h.u64(circuit.node_count());
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    h.u8(static_cast<std::uint8_t>(circuit.type(id)));
    const std::span<const NodeId> fanins = circuit.fanins(id);
    h.u8(static_cast<std::uint8_t>(fanins.size()));
    for (const NodeId f : fanins) {
      h.u32(f);
    }
  }
  h.u64(circuit.num_inputs());
  for (const NodeId id : circuit.inputs()) {
    h.u32(id);
  }
  h.u64(circuit.num_dffs());
  for (const NodeId id : circuit.dffs()) {
    h.u32(id);
  }
  h.u64(circuit.num_outputs());
  for (const auto& port : circuit.outputs()) {
    h.u32(port.driver);
  }
  return h.digest();
}

std::uint64_t testbench_content_hash(const Testbench& tb) {
  Fnv64 h;
  h.str("testbench:v1");
  h.u64(tb.input_width());
  h.u64(tb.num_cycles());
  for (const BitVec& v : tb.vectors()) {
    hash_bitvec(h, v);
  }
  return h.digest();
}

std::uint64_t fault_list_hash(std::span<const Fault> faults) {
  Fnv64 h;
  h.str("faults:seu:v1");
  h.u64(faults.size());
  for (const Fault& f : faults) {
    h.u32(f.ff_index);
    h.u32(f.cycle);
  }
  return h.digest();
}

std::uint64_t fault_list_hash(std::span<const MbuFault> faults) {
  Fnv64 h;
  h.str("faults:mbu:v1");
  h.u64(faults.size());
  for (const MbuFault& f : faults) {
    h.u32(f.cycle);
    h.u64(f.ff_indices.size());
    for (const std::uint32_t ff : f.ff_indices) {
      h.u32(ff);
    }
  }
  return h.digest();
}

std::uint64_t fault_list_hash(std::span<const SetFault> faults) {
  Fnv64 h;
  h.str("faults:set:v1");
  h.u64(faults.size());
  for (const SetFault& f : faults) {
    h.u32(f.node);
    h.u32(f.cycle);
    h.u16(f.pulse_q);
  }
  return h.digest();
}

std::uint64_t fault_list_hash(std::span<const StuckAtFault> faults) {
  Fnv64 h;
  h.str("faults:stuckat:v1");
  h.u64(faults.size());
  for (const StuckAtFault& f : faults) {
    h.u32(f.node);
    h.u8(f.stuck_one ? 1 : 0);
  }
  return h.digest();
}

CampaignFingerprint campaign_fingerprint(const Circuit& circuit,
                                         const Testbench& tb,
                                         std::span<const Fault> faults) {
  return make_fingerprint(circuit, tb, faults, FaultModel::kSeu);
}

CampaignFingerprint campaign_fingerprint(const Circuit& circuit,
                                         const Testbench& tb,
                                         std::span<const MbuFault> faults) {
  return make_fingerprint(circuit, tb, faults, FaultModel::kMbu);
}

CampaignFingerprint campaign_fingerprint(const Circuit& circuit,
                                         const Testbench& tb,
                                         std::span<const SetFault> faults) {
  return make_fingerprint(circuit, tb, faults, FaultModel::kSet);
}

CampaignFingerprint campaign_fingerprint(const Circuit& circuit,
                                         const Testbench& tb,
                                         std::span<const StuckAtFault> faults) {
  return make_fingerprint(circuit, tb, faults, FaultModel::kStuckAt);
}

// ---- loader ----------------------------------------------------------------

JournalContents load_journal(const std::string& path,
                             const CampaignFingerprint& expected,
                             std::size_t fault_count) {
  JournalContents contents;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    contents.status = JournalStatus::kMissing;
    contents.detail = str_cat("no journal at ", path);
    return contents;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  Reader r{bytes.data(), bytes.size()};

  char magic[8];
  if (!r.take(magic, sizeof magic) ||
      std::memcmp(magic, kFileMagic, sizeof magic) != 0) {
    contents.status = JournalStatus::kCorrupt;
    contents.detail = str_cat(path, ": not a campaign journal");
    return contents;
  }

  // One record: fills type/payload, false when the remaining bytes don't
  // form a verifiable record (torn tail).
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
  const auto next_record = [&]() -> bool {
    std::uint32_t rec_magic = 0;
    std::uint32_t len = 0;
    if (!r.get(rec_magic) || rec_magic != kRecordMagic || !r.get(type) ||
        !r.get(len) || bytes.size() - r.pos < len + 8u) {
      return false;
    }
    payload.resize(len);
    if (!r.take(payload.data(), len)) {
      return false;
    }
    std::uint64_t checksum = 0;
    return r.get(checksum) && checksum == record_checksum(type, payload);
  };

  // Header first — without it nothing else is trustworthy.
  if (!next_record() || type != kRecHeader) {
    contents.status = JournalStatus::kCorrupt;
    contents.detail = str_cat(path, ": journal header missing or corrupt");
    return contents;
  }
  {
    Reader hr{payload.data(), payload.size()};
    std::uint32_t version = 0;
    CampaignFingerprint fp;
    std::uint64_t count = 0;
    std::uint8_t has_sigs = 0;
    if (!hr.get(version) || !hr.get(fp.circuit) || !hr.get(fp.testbench) ||
        !hr.get(fp.faults) || !hr.get(fp.model) || !hr.get(fp.config) ||
        !hr.get(count) || !hr.get(has_sigs)) {
      contents.status = JournalStatus::kCorrupt;
      contents.detail = str_cat(path, ": journal header truncated");
      return contents;
    }
    if (version != kFormatVersion) {
      contents.status = JournalStatus::kCorrupt;
      contents.detail =
          str_cat(path, ": journal format v", version, ", expected v",
                  kFormatVersion);
      return contents;
    }
    if (fp != expected || count != fault_count) {
      std::string what;
      const auto name_component = [&](const char* component, bool differs) {
        if (differs) {
          what += what.empty() ? component : str_cat("+", component);
        }
      };
      name_component("circuit", fp.circuit != expected.circuit);
      name_component("testbench", fp.testbench != expected.testbench);
      name_component("fault-list", fp.faults != expected.faults);
      name_component("model", fp.model != expected.model);
      name_component("config", fp.config != expected.config);
      name_component("fault-count", count != fault_count);
      contents.status = JournalStatus::kFingerprintMismatch;
      contents.detail = str_cat(path, ": journal belongs to a different "
                                "campaign (", what, " differ)");
      return contents;
    }
    contents.has_signatures = has_sigs != 0;
  }

  contents.status = JournalStatus::kOk;
  contents.have.assign(fault_count, 0);
  contents.outcomes.assign(fault_count, FaultOutcome{});
  contents.signatures.assign(fault_count, 0);

  while (r.pos < bytes.size()) {
    if (!next_record()) {
      // Torn tail (typical after SIGKILL mid-append): everything before it
      // verified, so recover the valid prefix and say so.
      contents.truncated = true;
      break;
    }
    if (type == kRecComplete) {
      contents.complete = true;
      continue;
    }
    if (type != kRecGroup) {
      continue;  // checksummed but unknown — skip (forward compatibility)
    }
    Reader gr{payload.data(), payload.size()};
    std::uint32_t count = 0;
    if (!gr.get(count) || payload.size() != 4 + count * kEntryBytes) {
      contents.truncated = true;
      break;
    }
    bool bad = false;
    for (std::uint32_t k = 0; k < count; ++k) {
      std::uint32_t index = 0;
      std::uint8_t cls = 0;
      FaultOutcome outcome;
      std::uint64_t sig = 0;
      if (!gr.get(index) || !gr.get(cls) || !gr.get(outcome.detect_cycle) ||
          !gr.get(outcome.converge_cycle) || !gr.get(sig) ||
          index >= fault_count || cls > 2) {
        bad = true;
        break;
      }
      outcome.cls = static_cast<FaultClass>(cls);
      if (!contents.have[index]) {
        contents.have[index] = 1;
        ++contents.num_known;
      }
      contents.outcomes[index] = outcome;
      contents.signatures[index] = sig;
    }
    if (bad) {
      contents.truncated = true;
      break;
    }
  }
  return contents;
}

// ---- writer ----------------------------------------------------------------

void CampaignJournalWriter::write_record(
    std::uint8_t type, const std::vector<std::uint8_t>& payload,
    std::ostream& out) {
  std::vector<std::uint8_t> rec;
  rec.reserve(4 + 1 + 4 + payload.size() + 8);
  put(rec, kRecordMagic);
  put(rec, type);
  put(rec, static_cast<std::uint32_t>(payload.size()));
  rec.insert(rec.end(), payload.begin(), payload.end());
  put(rec, record_checksum(type, payload));
  out.write(reinterpret_cast<const char*>(rec.data()),
            static_cast<std::streamsize>(rec.size()));
  out.flush();
  FEMU_CHECK(out.good(), "journal write to ", path_, " failed");
}

CampaignJournalWriter::CampaignJournalWriter(
    const std::string& path, const CampaignFingerprint& fingerprint,
    std::uint64_t fault_count, bool with_signatures,
    const JournalContents* replay)
    : path_(path), with_signatures_(with_signatures) {
  // Build the new journal beside the old one and rename into place: an
  // interrupted construction can never leave a half-written file at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    FEMU_CHECK(out.good(), "cannot create journal ", tmp);
    out.write(kFileMagic, sizeof kFileMagic);

    std::vector<std::uint8_t> header;
    put(header, kFormatVersion);
    put(header, fingerprint.circuit);
    put(header, fingerprint.testbench);
    put(header, fingerprint.faults);
    put(header, fingerprint.model);
    put(header, fingerprint.config);
    put(header, fault_count);
    put(header, static_cast<std::uint8_t>(with_signatures ? 1 : 0));
    write_record(kRecHeader, header, out);

    if (replay != nullptr && replay->num_known != 0) {
      // Compaction: everything already known goes into one group record, so
      // a resumed journal never re-accumulates its history.
      std::vector<std::uint8_t> group;
      put(group, static_cast<std::uint32_t>(replay->num_known));
      for (std::size_t i = 0; i < replay->have.size(); ++i) {
        if (!replay->have[i]) {
          continue;
        }
        put(group, static_cast<std::uint32_t>(i));
        put(group, static_cast<std::uint8_t>(replay->outcomes[i].cls));
        put(group, replay->outcomes[i].detect_cycle);
        put(group, replay->outcomes[i].converge_cycle);
        put(group, i < replay->signatures.size() ? replay->signatures[i]
                                                 : std::uint64_t{0});
      }
      write_record(kRecGroup, group, out);
    }
  }
  FEMU_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "cannot move journal ", tmp, " into place at ", path);
  out_.open(path, std::ios::binary | std::ios::app);
  FEMU_CHECK(out_.good(), "cannot append to journal ", path);
}

void CampaignJournalWriter::append(std::span<const std::uint32_t> indices,
                                   std::span<const FaultOutcome> outcomes,
                                   std::span<const std::uint64_t> sigs) {
  std::vector<std::uint8_t> group;
  group.reserve(4 + indices.size() * kEntryBytes);
  put(group, static_cast<std::uint32_t>(indices.size()));
  for (std::size_t k = 0; k < indices.size(); ++k) {
    put(group, indices[k]);
    put(group, static_cast<std::uint8_t>(outcomes[k].cls));
    put(group, outcomes[k].detect_cycle);
    put(group, outcomes[k].converge_cycle);
    put(group, k < sigs.size() ? sigs[k] : std::uint64_t{0});
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  // Flush latency measured under the lock (the serialized write+flush IS
  // the flush cost a group retirement pays); null telemetry skips the
  // clock reads entirely.
  const std::uint64_t begin_ns = telemetry_ != nullptr ? now_ns() : 0;
  write_record(kRecGroup, group, out_);
  if (telemetry_ != nullptr) {
    telemetry_->record_flush(begin_ns, now_ns());
  }
}

void CampaignJournalWriter::mark_complete() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t begin_ns = telemetry_ != nullptr ? now_ns() : 0;
  write_record(kRecComplete, {}, out_);
  if (telemetry_ != nullptr) {
    telemetry_->record_flush(begin_ns, now_ns());
  }
}

// ---- journaled campaign ----------------------------------------------------

namespace {

/// Clears the engine's retire callback on scope exit (exception-safe).
struct CallbackGuard {
  ParallelFaultSimulator& sim;
  ~CallbackGuard() { sim.set_retire_callback({}); }
};

}  // namespace

JournaledCampaignReport run_journaled_seu_campaign(
    ParallelFaultSimulator& sim, std::span<const Fault> faults,
    const std::string& journal_path, bool resume,
    const ParallelFaultSimulator::RetireCallback& observer) {
  const std::size_t n = faults.size();
  const CampaignFingerprint fp =
      campaign_fingerprint(sim.circuit(), sim.testbench(), faults);
  const bool capture = sim.capture_signatures();

  JournaledCampaignReport report;
  JournalContents prior;
  if (resume) {
    prior = load_journal(journal_path, fp, n);
    switch (prior.status) {
      case JournalStatus::kOk:
        if (capture && !prior.has_signatures && prior.num_known != 0) {
          report.warning =
              str_cat(journal_path, ": journal carries no failure signatures "
                      "but signature capture is enabled; re-running all "
                      "faults");
          prior = JournalContents{};
        } else if (prior.truncated) {
          report.warning = str_cat(journal_path, ": invalid journal tail "
                                   "dropped; resumed from the valid prefix");
        }
        break;
      case JournalStatus::kMissing:
        break;  // fresh start, nothing to warn about
      case JournalStatus::kCorrupt:
      case JournalStatus::kFingerprintMismatch:
        report.warning = str_cat(prior.detail, "; re-running all faults");
        prior = JournalContents{};
        break;
    }
  }

  const bool have_prior =
      prior.status == JournalStatus::kOk && prior.num_known != 0;
  CampaignJournalWriter writer(journal_path, fp, n, capture,
                               have_prior ? &prior : nullptr);
  writer.set_telemetry(sim.config().telemetry);

  std::vector<FaultOutcome> outcomes(n);
  std::vector<std::uint64_t> sigs;
  if (capture) {
    sigs.assign(n, 0);
  }
  std::vector<Fault> rest;
  std::vector<std::uint32_t> rest_index;
  for (std::size_t i = 0; i < n; ++i) {
    if (have_prior && prior.have[i]) {
      outcomes[i] = prior.outcomes[i];
      if (capture) {
        sigs[i] = prior.signatures[i];
      }
      ++report.replayed;
    } else {
      rest.push_back(faults[i]);
      rest_index.push_back(static_cast<std::uint32_t>(i));
    }
  }
  report.resumed = report.replayed != 0;
  report.graded = rest.size();

  if (!rest.empty()) {
    const CallbackGuard guard{sim};
    sim.set_retire_callback(
        [&](std::span<const std::uint32_t> idx,
            std::span<const FaultOutcome> group_outcomes,
            std::span<const std::uint64_t> group_sigs) {
          std::vector<std::uint32_t> mapped(idx.size());
          for (std::size_t j = 0; j < idx.size(); ++j) {
            mapped[j] = rest_index[idx[j]];
          }
          writer.append(mapped, group_outcomes, group_sigs);
          if (observer) {
            observer(mapped, group_outcomes, group_sigs);
          }
        });
    const CampaignResult part = sim.run(rest);
    for (std::size_t j = 0; j < rest.size(); ++j) {
      outcomes[rest_index[j]] = part.outcomes()[j];
    }
    if (capture) {
      const std::span<const std::uint64_t> part_sigs =
          sim.last_run_signatures();
      for (std::size_t j = 0; j < rest.size(); ++j) {
        sigs[rest_index[j]] = part_sigs[j];
      }
    }
  }
  writer.mark_complete();

  report.result = CampaignResult(std::vector<Fault>(faults.begin(),
                                                    faults.end()),
                                 std::move(outcomes));
  report.signatures = std::move(sigs);
  return report;
}

// ---- incremental re-grade --------------------------------------------------

RegradeReport regrade_from_journal(
    ParallelFaultSimulator& new_sim, std::span<const Fault> faults,
    const Circuit& old_circuit, const std::string& old_journal_path,
    const std::string& new_journal_path,
    const ParallelFaultSimulator::RetireCallback& observer) {
  const std::size_t n = faults.size();
  const Circuit& new_circuit = new_sim.circuit();
  const bool capture = new_sim.capture_signatures();

  RegradeReport report;
  JournalContents prior;
  std::vector<std::uint8_t> dirty_ff;
  bool can_reuse = false;

  const CircuitDiff diff = diff_circuits(old_circuit, new_circuit);
  if (!diff.interface_compatible) {
    report.warning = str_cat("circuit interfaces incompatible (",
                             diff.incompatibility, "); full re-run");
  } else {
    const CampaignFingerprint old_fp =
        campaign_fingerprint(old_circuit, new_sim.testbench(), faults);
    prior = load_journal(old_journal_path, old_fp, n);
    if (prior.status != JournalStatus::kOk) {
      report.warning = str_cat(prior.detail, "; full re-run");
    } else if (capture && !prior.has_signatures && prior.num_known != 0) {
      report.warning = str_cat(old_journal_path, ": journal carries no "
                               "failure signatures but signature capture is "
                               "enabled; full re-run");
    } else {
      dirty_ff = dirty_ff_set(old_circuit, new_circuit, diff);
      can_reuse = true;
    }
  }
  report.full_rerun = !can_reuse;

  std::vector<FaultOutcome> outcomes(n);
  std::vector<std::uint64_t> sigs;
  if (capture) {
    sigs.assign(n, 0);
  }
  std::vector<Fault> rest;
  std::vector<std::uint32_t> rest_index;
  std::vector<std::uint8_t> reused_mask(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Fault& f = faults[i];
    const bool dirty = can_reuse && dirty_ff[f.ff_index];
    if (dirty) {
      ++report.dirty_faults;
    }
    if (can_reuse && !dirty && prior.have[i]) {
      outcomes[i] = prior.outcomes[i];
      if (capture) {
        sigs[i] = prior.signatures[i];
      }
      reused_mask[i] = 1;
      ++report.reused;
    } else {
      rest.push_back(f);
      rest_index.push_back(static_cast<std::uint32_t>(i));
    }
  }
  report.regraded = rest.size();

  std::unique_ptr<CampaignJournalWriter> writer;
  if (!new_journal_path.empty()) {
    const CampaignFingerprint new_fp =
        campaign_fingerprint(new_circuit, new_sim.testbench(), faults);
    JournalContents replay;
    replay.status = JournalStatus::kOk;
    replay.have = reused_mask;
    replay.outcomes = outcomes;
    replay.signatures = sigs;
    replay.num_known = report.reused;
    writer = std::make_unique<CampaignJournalWriter>(
        new_journal_path, new_fp, n, capture,
        report.reused != 0 ? &replay : nullptr);
    writer->set_telemetry(new_sim.config().telemetry);
  }

  if (!rest.empty()) {
    const CallbackGuard guard{new_sim};
    new_sim.set_retire_callback(
        [&](std::span<const std::uint32_t> idx,
            std::span<const FaultOutcome> group_outcomes,
            std::span<const std::uint64_t> group_sigs) {
          std::vector<std::uint32_t> mapped(idx.size());
          for (std::size_t j = 0; j < idx.size(); ++j) {
            mapped[j] = rest_index[idx[j]];
          }
          if (writer != nullptr) {
            writer->append(mapped, group_outcomes, group_sigs);
          }
          if (observer) {
            observer(mapped, group_outcomes, group_sigs);
          }
        });
    const CampaignResult part = new_sim.run(rest);
    for (std::size_t j = 0; j < rest.size(); ++j) {
      outcomes[rest_index[j]] = part.outcomes()[j];
    }
    if (capture) {
      const std::span<const std::uint64_t> part_sigs =
          new_sim.last_run_signatures();
      for (std::size_t j = 0; j < rest.size(); ++j) {
        sigs[rest_index[j]] = part_sigs[j];
      }
    }
  }
  if (writer != nullptr) {
    writer->mark_complete();
  }

  report.result = CampaignResult(std::vector<Fault>(faults.begin(),
                                                    faults.end()),
                                 std::move(outcomes));
  report.signatures = std::move(sigs);
  return report;
}

}  // namespace femu
