#include "fault/stuckat_model.h"

#include "common/error.h"
#include "fault/fault_list.h"

namespace femu {

std::vector<StuckAtFault> complete_stuckat_fault_list(const SetSites& sites,
                                                      bool collapsed) {
  const std::span<const NodeId> nodes =
      collapsed ? sites.representatives() : sites.sites();
  std::vector<StuckAtFault> faults;
  faults.reserve(nodes.size() * 2);
  for (const NodeId node : nodes) {
    faults.push_back(StuckAtFault{node, false});
    faults.push_back(StuckAtFault{node, true});
  }
  return faults;
}

std::vector<StuckAtFault> sample_stuckat_fault_list(const SetSites& sites,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  const std::span<const NodeId> reps = sites.representatives();
  const std::vector<std::uint64_t> chosen =
      sample_index_set(std::uint64_t{reps.size()} * 2, count, seed);
  std::vector<StuckAtFault> faults;
  faults.reserve(count);
  for (const std::uint64_t index : chosen) {
    faults.push_back(StuckAtFault{reps[index / 2], (index & 1) != 0});
  }
  return faults;
}

StuckAtCampaignResult expand_collapsed_stuckat_result(
    const SetSites& sites, const StuckAtCampaignResult& rep_result) {
  StuckAtCampaignResult out;
  out.faults.reserve(rep_result.faults.size());
  out.outcomes.reserve(rep_result.outcomes.size());
  for (std::size_t i = 0; i < rep_result.faults.size(); ++i) {
    const StuckAtFault& fault = rep_result.faults[i];
    if (sites.representative(fault.node) == fault.node) {
      // stuck-at-v at member == stuck-at-(v ^ parity) at rep, so the
      // member fault reproducing this rep fault's behaviour carries the
      // rep polarity translated back through its own chain parity.
      for (const NodeId member : sites.class_members(fault.node)) {
        out.faults.push_back(StuckAtFault{
            member, fault.stuck_one != sites.rep_inverted(member)});
        out.outcomes.push_back(rep_result.outcomes[i]);
      }
    } else {
      // A raw (uncollapsed) site: its own evidence, passed through.
      out.faults.push_back(fault);
      out.outcomes.push_back(rep_result.outcomes[i]);
    }
  }
  out.counts.add(out.outcomes);
  return out;
}

SerialStuckAtSimulator::SerialStuckAtSimulator(const Circuit& circuit,
                                               const Testbench& testbench)
    : circuit_(circuit),
      testbench_(testbench),
      golden_(capture_golden(circuit, testbench.vectors())),
      dff_d_(circuit.dff_drivers()),
      values_(circuit.node_count(), 0),
      state_(circuit.num_dffs(), 0) {
  FEMU_CHECK(testbench.input_width() == circuit.num_inputs(),
             "testbench width ", testbench.input_width(), " != circuit PI ",
             circuit.num_inputs());
}

StuckAtCampaignResult SerialStuckAtSimulator::run(
    std::span<const StuckAtFault> faults) {
  const std::size_t num_cycles = testbench_.num_cycles();
  const std::size_t num_nodes = circuit_.node_count();

  // Source ordinals: PI nodes -> stimulus bit, DFF nodes -> state bit.
  std::vector<std::uint32_t> ordinal(num_nodes, 0);
  for (std::size_t i = 0; i < circuit_.inputs().size(); ++i) {
    ordinal[circuit_.inputs()[i]] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = 0; i < circuit_.dffs().size(); ++i) {
    ordinal[circuit_.dffs()[i]] = static_cast<std::uint32_t>(i);
  }

  StuckAtCampaignResult result;
  result.faults.assign(faults.begin(), faults.end());
  result.outcomes.assign(faults.size(),
                         FaultOutcome{FaultClass::kLatent, kNoCycle, kNoCycle});

  const auto settle = [&](std::size_t t, NodeId force_node, bool force_value) {
    const BitVec& vector = testbench_.vector(t);
    for (NodeId id = 0; id < num_nodes; ++id) {
      bool v;
      const CellType type = circuit_.type(id);
      switch (type) {
        case CellType::kInput:
          v = vector.get(ordinal[id]);
          break;
        case CellType::kDff:
          v = state_[ordinal[id]] != 0;
          break;
        case CellType::kConst0:
          v = false;
          break;
        case CellType::kConst1:
          v = true;
          break;
        default: {
          const auto fanins = circuit_.fanins(id);
          const bool a = values_[fanins[0]] != 0;
          const bool b = fanins.size() > 1 ? values_[fanins[1]] != 0 : a;
          const bool c = fanins.size() > 2 ? values_[fanins[2]] != 0 : a;
          v = eval_cell_bool(type, a, b, c);
          break;
        }
      }
      values_[id] = static_cast<char>(id == force_node ? force_value : v);
    }
  };

  for (std::size_t k = 0; k < faults.size(); ++k) {
    const StuckAtFault& fault = faults[k];
    FEMU_CHECK(fault.node < num_nodes &&
                   is_comb_cell(circuit_.type(fault.node)),
               "stuck-at node ", fault.node, " is not a combinational gate");
    FaultOutcome& outcome = result.outcomes[k];

    // The fault is present from reset: the faulty machine starts in the
    // golden reset state and the force applies to every settle.
    const BitVec& start = golden_.states[0];
    for (std::size_t i = 0; i < state_.size(); ++i) {
      state_[i] = static_cast<char>(start.get(i));
    }

    for (std::size_t t = 0; t < num_cycles; ++t) {
      settle(t, fault.node, fault.stuck_one);

      bool output_mismatch = false;
      for (std::size_t o = 0; o < circuit_.num_outputs(); ++o) {
        if ((values_[circuit_.outputs()[o].driver] != 0) !=
            golden_.outputs[t].get(o)) {
          output_mismatch = true;
          break;
        }
      }
      if (output_mismatch) {
        outcome.cls = FaultClass::kFailure;
        outcome.detect_cycle = static_cast<std::uint32_t>(t);
        break;
      }

      for (std::size_t i = 0; i < state_.size(); ++i) {
        state_[i] = values_[dff_d_[i]];
      }
      // No convergence retirement: a permanent fault whose state happens to
      // match golden can be re-excited any later cycle, so the lane runs to
      // the end of the testbench.
    }

    if (outcome.cls != FaultClass::kFailure) {
      bool state_mismatch = false;
      const BitVec& final_state = golden_.states[num_cycles];
      for (std::size_t i = 0; i < state_.size(); ++i) {
        if ((state_[i] != 0) != final_state.get(i)) {
          state_mismatch = true;
          break;
        }
      }
      outcome.cls =
          state_mismatch ? FaultClass::kLatent : FaultClass::kSilent;
    }
  }
  result.counts.add(result.outcomes);
  return result;
}

}  // namespace femu
