#include "fault/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace femu {

ProportionEstimate estimate_proportion(std::size_t hits, std::size_t n,
                                       double z) {
  FEMU_CHECK(hits <= n, "estimate_proportion: ", hits, " hits out of ", n);
  FEMU_CHECK(z > 0.0, "z must be positive");
  ProportionEstimate est;
  if (n == 0) {
    est.high = 1.0;
    return est;
  }
  const double nd = static_cast<double>(n);
  const double p = static_cast<double>(hits) / nd;
  est.fraction = p;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nd;
  const double centre = p + z2 / (2.0 * nd);
  const double spread =
      z * std::sqrt(p * (1.0 - p) / nd + z2 / (4.0 * nd * nd));
  est.low = std::max(0.0, (centre - spread) / denom);
  est.high = std::min(1.0, (centre + spread) / denom);
  return est;
}

std::size_t required_sample_size(double margin, double z) {
  FEMU_CHECK(margin > 0.0 && margin < 1.0, "margin must be in (0, 1)");
  FEMU_CHECK(z > 0.0, "z must be positive");
  return static_cast<std::size_t>(
      std::ceil(z * z / (4.0 * margin * margin)));
}

SampledGrading estimate_grading(const CampaignResult& result, double z) {
  const ClassCounts& counts = result.counts();
  SampledGrading grading;
  grading.sample_size = counts.total();
  grading.failure = estimate_proportion(counts.failure, counts.total(), z);
  grading.latent = estimate_proportion(counts.latent, counts.total(), z);
  grading.silent = estimate_proportion(counts.silent, counts.total(), z);
  return grading;
}

}  // namespace femu
