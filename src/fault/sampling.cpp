#include "fault/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace femu {

namespace {

/// Wilson score interval core over a (possibly fractional) trial count —
/// the shared math behind the integer and the weighted entry points.
ProportionEstimate wilson_interval(double p, double nd, double z) {
  ProportionEstimate est;
  if (nd <= 0.0) {
    est.high = 1.0;
    return est;
  }
  est.fraction = p;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nd;
  const double centre = p + z2 / (2.0 * nd);
  const double spread =
      z * std::sqrt(p * (1.0 - p) / nd + z2 / (4.0 * nd * nd));
  est.low = std::max(0.0, (centre - spread) / denom);
  est.high = std::min(1.0, (centre + spread) / denom);
  return est;
}

}  // namespace

ProportionEstimate estimate_proportion(std::size_t hits, std::size_t n,
                                       double z) {
  FEMU_CHECK(hits <= n, "estimate_proportion: ", hits, " hits out of ", n);
  FEMU_CHECK(z > 0.0, "z must be positive");
  if (n == 0) {
    ProportionEstimate est;
    est.high = 1.0;
    return est;
  }
  return wilson_interval(
      static_cast<double>(hits) / static_cast<double>(n),
      static_cast<double>(n), z);
}

ProportionEstimate estimate_proportion_weighted(double fraction, double n_eff,
                                                double z) {
  FEMU_CHECK(fraction >= 0.0 && fraction <= 1.0,
             "weighted fraction ", fraction, " outside [0, 1]");
  FEMU_CHECK(n_eff >= 0.0, "effective sample size must be non-negative");
  FEMU_CHECK(z > 0.0, "z must be positive");
  return wilson_interval(fraction, n_eff, z);
}

std::size_t required_sample_size(double margin, double z) {
  FEMU_CHECK(margin > 0.0 && margin < 1.0, "margin must be in (0, 1)");
  FEMU_CHECK(z > 0.0, "z must be positive");
  return static_cast<std::size_t>(
      std::ceil(z * z / (4.0 * margin * margin)));
}

SampledGrading estimate_grading(const CampaignResult& result, double z) {
  const ClassCounts& counts = result.counts();
  SampledGrading grading;
  grading.sample_size = counts.total();
  grading.effective_sample_size = static_cast<double>(counts.total());
  grading.failure = estimate_proportion(counts.failure, counts.total(), z);
  grading.latent = estimate_proportion(counts.latent, counts.total(), z);
  grading.silent = estimate_proportion(counts.silent, counts.total(), z);
  return grading;
}

SampledGrading estimate_weighted_grading(std::span<const FaultOutcome> outcomes,
                                         std::span<const double> weights,
                                         double z) {
  FEMU_CHECK(outcomes.size() == weights.size(), "weights size ",
             weights.size(), " != outcomes size ", outcomes.size());
  double w_total = 0.0;
  double w_sq_total = 0.0;
  double w_failure = 0.0;
  double w_latent = 0.0;
  double w_silent = 0.0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const double w = weights[i];
    FEMU_CHECK(w > 0.0, "non-positive weight ", w, " at index ", i);
    w_total += w;
    w_sq_total += w * w;
    switch (outcomes[i].cls) {
      case FaultClass::kFailure: w_failure += w; break;
      case FaultClass::kLatent:  w_latent += w;  break;
      case FaultClass::kSilent:  w_silent += w;  break;
    }
  }
  SampledGrading grading;
  grading.sample_size = outcomes.size();
  if (outcomes.empty()) {
    grading.failure.high = grading.latent.high = grading.silent.high = 1.0;
    return grading;
  }
  // Kish effective sample size: what unequal weights shrink n to. Equal
  // weights give exactly n, so the unweighted and weighted paths agree.
  const double n_eff = w_total * w_total / w_sq_total;
  grading.effective_sample_size = n_eff;
  grading.failure =
      estimate_proportion_weighted(w_failure / w_total, n_eff, z);
  grading.latent = estimate_proportion_weighted(w_latent / w_total, n_eff, z);
  grading.silent = estimate_proportion_weighted(w_silent / w_total, n_eff, z);
  return grading;
}

SampledGrading estimate_set_grading(const SetSites& sites,
                                    const SetCampaignResult& rep_result,
                                    double z) {
  std::vector<double> weights;
  weights.reserve(rep_result.faults.size());
  for (const SetFault& fault : rep_result.faults) {
    // A graded representative stands for its whole equivalence class in the
    // all-sites population; a fault on a non-representative site is its
    // own, single-site evidence.
    const double w =
        sites.representative(fault.node) == fault.node
            ? static_cast<double>(sites.class_members(fault.node).size())
            : 1.0;
    weights.push_back(w);
  }
  return estimate_weighted_grading(rep_result.outcomes, weights, z);
}

}  // namespace femu
