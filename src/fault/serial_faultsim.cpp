#include "fault/serial_faultsim.h"

#include "common/error.h"
#include "common/timer.h"

namespace femu {

SerialFaultSimulator::SerialFaultSimulator(const Circuit& circuit,
                                           const Testbench& testbench)
    : circuit_(circuit),
      testbench_(testbench),
      golden_(capture_golden(circuit, testbench.vectors())),
      sim_(circuit) {
  FEMU_CHECK(testbench.input_width() == circuit.num_inputs(),
             "testbench width ", testbench.input_width(), " != circuit PI ",
             circuit.num_inputs());
}

CampaignResult SerialFaultSimulator::run(std::span<const Fault> faults) {
  const std::size_t num_cycles = testbench_.num_cycles();
  WallTimer timer;
  std::vector<FaultOutcome> outcomes;
  outcomes.reserve(faults.size());

  for (const Fault& fault : faults) {
    FEMU_CHECK(fault.cycle < num_cycles, "fault cycle ", fault.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(fault.ff_index < circuit_.num_dffs(), "fault FF ",
               fault.ff_index, " out of range");

    sim_.set_state(golden_.states[fault.cycle]);
    sim_.flip_state_bit(fault.ff_index);

    FaultOutcome outcome;
    outcome.cls = FaultClass::kLatent;  // default when never classified below
    for (std::size_t t = fault.cycle; t < num_cycles; ++t) {
      const BitVec outputs = sim_.eval(testbench_.vector(t));
      if (outputs != golden_.outputs[t]) {
        outcome.cls = FaultClass::kFailure;
        outcome.detect_cycle = static_cast<std::uint32_t>(t);
        break;
      }
      sim_.step();
      if (sim_.state() == golden_.states[t + 1]) {
        outcome.cls = FaultClass::kSilent;
        outcome.converge_cycle = static_cast<std::uint32_t>(t + 1);
        break;
      }
    }
    outcomes.push_back(outcome);
  }

  last_run_seconds_ = timer.elapsed_seconds();
  return CampaignResult(std::vector<Fault>(faults.begin(), faults.end()),
                        std::move(outcomes));
}

}  // namespace femu
