#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/campaign_result.h"
#include "netlist/circuit.h"
#include "sim/golden.h"
#include "stim/testbench.h"

namespace femu {

/// A single-event transient: the output of combinational gate `node` has its
/// value inverted during testbench cycle `cycle`'s evaluation — every
/// downstream reader of the node sees the inverted value for that one
/// settle, and the transient is gone the next cycle. It matters only if it
/// is observed at a primary output during cycle `cycle` or latched into a
/// flip-flop at the cycle's clock edge; otherwise the machine never deviates
/// from golden (logical masking) and the fault grades silent.
///
/// SETs are the combinational half of the transient-fault space the paper
/// grades (its SEU bit-flip model covers the sequential half); as feature
/// sizes shrank, gate-level transients became the dominant soft-error
/// mechanism, which is why fault graders grew this model.
///
/// **Pulse width / latching window.** A real transient is a pulse, not a
/// full-cycle inversion: it latches into a downstream flip-flop only when it
/// overlaps that FF's setup window, with probability equal to the pulse
/// width as a fraction of the clock period. `pulse_q` discretises that
/// fraction in 1/256 steps (width = pulse_q / 256); the default
/// `kSetPulseFull` (256) is the classic full-cycle inversion — always
/// latched, bit-identical to the pre-pulse model. For narrower pulses each
/// destination FF draws a deterministic setup-window-overlap decision from
/// set_pulse_latches(); primary outputs are monitored continuously, so
/// observation during the injection cycle is unaffected by the width.
struct SetFault {
  NodeId node = 0;
  std::uint32_t cycle = 0;
  std::uint16_t pulse_q = 256;  // kSetPulseFull

  friend bool operator==(const SetFault&, const SetFault&) = default;
};

/// pulse_q value of a full-cycle inversion (width fraction 1.0).
inline constexpr std::uint16_t kSetPulseFull = 256;

/// Discretises a pulse-width fraction in [0, 1] to a pulse_q step.
[[nodiscard]] std::uint16_t set_pulse_q(double width_fraction);

/// The width fraction a pulse_q step denotes.
[[nodiscard]] constexpr double set_pulse_fraction(std::uint16_t q) noexcept {
  return static_cast<double>(q) / static_cast<double>(kSetPulseFull);
}

/// Deterministic setup-window-overlap draw: does the transient of fault
/// (node, cycle) latch into flip-flop `ff`? True with probability
/// pulse_q / 256 over uniformly mixed (node, cycle, ff) triples; always
/// true at kSetPulseFull. A pure function of its arguments — the serial
/// reference and every kernel engine make identical decisions, so
/// cross-validation stays exact at any width.
[[nodiscard]] bool set_pulse_latches(NodeId node, std::uint32_t cycle,
                                     std::uint32_t ff,
                                     std::uint16_t pulse_q) noexcept;

/// SET site enumeration over a Circuit, with equivalence collapse.
///
/// Every combinational gate output is a site. Two sites are *equivalent*
/// when inverting one for a cycle produces exactly the same machine
/// behaviour as inverting the other in the same cycle: a gate whose output
/// is read by exactly one consumer, that consumer being an inversion-
/// transparent unary cell (kBuf/kNot), and which drives neither a primary
/// output nor a DFF D pin, is equivalent to that consumer (the flip passes
/// through unchanged in observability). Chains of such gates collapse onto
/// their last member — a fanout-free-region tail collapse — so a campaign
/// grades one representative per class and expands the outcome to the
/// members afterwards (see expand_collapsed_result).
class SetSites {
 public:
  explicit SetSites(const Circuit& circuit);

  /// Every combinational gate node id, ascending.
  [[nodiscard]] std::span<const NodeId> sites() const noexcept {
    return sites_;
  }

  /// Unique class representatives, ascending node id.
  [[nodiscard]] std::span<const NodeId> representatives() const noexcept {
    return reps_;
  }

  /// Representative of `site`'s equivalence class (== site when the class
  /// is a singleton). `site` must be a combinational gate.
  [[nodiscard]] NodeId representative(NodeId site) const {
    return rep_of_[site];
  }

  /// Members collapsed onto representative `rep` (including rep itself).
  [[nodiscard]] std::span<const NodeId> class_members(NodeId rep) const;

  /// Parity of the collapse chain from `site` to its representative: true
  /// when an odd number of inverting (kNot) cells lie on the chain. A SET
  /// (inversion) is parity-blind — flipping either end of the chain is the
  /// same disturbance — but a *polarity-carrying* fault is not: stuck-at-v
  /// at `site` is behaviourally identical to stuck-at-(v XOR
  /// rep_inverted(site)) at representative(site). False for every
  /// self-representative site.
  [[nodiscard]] bool rep_inverted(NodeId site) const {
    return rep_inverted_[site] != 0;
  }

  [[nodiscard]] std::size_t num_sites() const noexcept {
    return sites_.size();
  }
  [[nodiscard]] std::size_t num_representatives() const noexcept {
    return reps_.size();
  }

 private:
  std::vector<NodeId> sites_;
  std::vector<NodeId> reps_;
  std::vector<NodeId> rep_of_;          // node id -> representative node id
  std::vector<std::uint8_t> rep_inverted_;  // node id -> chain parity
  std::vector<NodeId> members_;         // grouped by representative
  std::vector<std::uint32_t> class_begin_;  // per rep: offset into members_
};

/// The complete SET fault list: every representative site x every cycle,
/// cycle-major (pass collapsed = false for every raw site instead — e.g. to
/// validate the collapse itself). `pulse_q` applies the same discretised
/// pulse width to every fault (default: full-cycle inversion).
[[nodiscard]] std::vector<SetFault> complete_set_fault_list(
    const SetSites& sites, std::size_t num_cycles, bool collapsed = true,
    std::uint16_t pulse_q = kSetPulseFull);

/// Uniform random sample (without replacement) of `count` faults from the
/// complete representative-site list, in schedule order.
[[nodiscard]] std::vector<SetFault> sample_set_fault_list(
    const SetSites& sites, std::size_t num_cycles, std::size_t count,
    std::uint64_t seed, std::uint16_t pulse_q = kSetPulseFull);

/// Result of a SET campaign (same classification semantics as the SEU
/// CampaignResult; the fault identity is a SetFault).
struct SetCampaignResult {
  std::vector<SetFault> faults;
  std::vector<FaultOutcome> outcomes;
  ClassCounts counts;
};

/// Expands a representative-site campaign to the full site set: every
/// member of a graded representative's equivalence class receives a copy of
/// the representative's outcome. Faults on non-representative sites are
/// passed through unchanged (they are their own, singleton evidence).
[[nodiscard]] SetCampaignResult expand_collapsed_result(
    const SetSites& sites, const SetCampaignResult& rep_result);

/// Interpreted per-fault SET reference simulator.
///
/// One fault at a time: restore the golden state at the injection cycle,
/// evaluate the circuit graph directly with the site's value inverted during
/// that cycle's settle, then run forward until classified (output mismatch
/// -> failure, state re-convergence -> silent, end of testbench -> latent).
/// Deliberately kernel-free — it walks the Circuit object graph node by
/// node — so it cross-validates the compiled injection-overlay engines from
/// a fully independent implementation.
class SerialSetSimulator {
 public:
  SerialSetSimulator(const Circuit& circuit, const Testbench& testbench);

  /// Grades every fault; outcomes align with the input order.
  [[nodiscard]] SetCampaignResult run(std::span<const SetFault> faults);

  [[nodiscard]] const GoldenTrace& golden() const noexcept { return golden_; }

 private:
  const Circuit& circuit_;
  const Testbench& testbench_;
  GoldenTrace golden_;
  std::vector<NodeId> dff_d_;
  std::vector<char> values_;  // per node, current settle
  std::vector<char> state_;   // per DFF
};

}  // namespace femu
