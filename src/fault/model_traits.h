#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "fault/fault.h"
#include "fault/mbu.h"
#include "fault/set_model.h"
#include "fault/stuckat_model.h"
#include "netlist/circuit.h"
#include "netlist/fanout_cones.h"
#include "sim/compiled_kernel.h"
#include "sim/lane_word.h"

namespace femu {

/// The cone source behind a campaign: eager materialized matrices or the
/// on-demand oracle (ConePolicy). Both derive bit-identical cones; the
/// group runners never know which one is active.
struct ConeBackend {
  const FanoutCones* eager_ff = nullptr;
  const GateCones* eager_gate = nullptr;
  const ConeOracle* oracle = nullptr;

  void union_ff(std::span<std::uint64_t> mask, std::size_t ff) const {
    if (eager_ff != nullptr) {
      eager_ff->union_into(mask, ff);
    } else {
      oracle->union_into_ff(mask, ff);
    }
  }
  void union_gate(std::span<std::uint64_t> mask, NodeId gate) const {
    if (eager_gate != nullptr) {
      eager_gate->union_into(mask, eager_gate->site_index(gate));
    } else {
      oracle->union_into_gate(mask, gate);
    }
  }
};

/// Fault-model descriptor — the one place a fault model's mechanics live.
///
/// `ParallelFaultSimulator` is a single generic campaign engine; everything
/// model-specific is answered by the matching FaultModelTraits
/// specialization, instantiated once per campaign:
///
///   FaultT              — the fault record the caller grades
///   kDescriptor         — stable descriptor name ("model:mechanism"), the
///                         string the CLI/bench JSON reports
///   kUsesOverlay        — the fault enters through the kernel's
///                         instruction-stream overlay (compiled backend
///                         only) instead of state-bit flips before eval
///   kOverlayOp          — which overlay op the model emits (see
///                         CompiledKernel::OverlayEntry's op table)
///   kOverlayEveryCycle  — the overlay applies on every cycle (permanent
///                         fault) rather than only on the injection cycle
///   kRetireOnConvergence— a lane whose state re-converges to golden is
///                         graded silent and retired; false for permanent
///                         faults, which can be re-excited later (their
///                         undetected lanes map to latent/silent by the
///                         final-state comparison instead)
///   kSiteKeyed          — schedule keys, seed keys and affinity ranks live
///                         in gate-site (node-id) space instead of
///                         flip-flop space
///   kLatchThinning      — lanes may carry a sub-full-width transient whose
///                         latching is thinned per destination FF
///                         (pulse-width SET)
///   cycle/schedule_site — the (cycle, site) schedule key of a fault
///   inject              — state-bit entry (no-op for overlay models)
///   overlay_node/entry  — overlay destination and op-tagged lane masks
///   union_cone/seed_key — the structural divergence bound and the
///                         sub-program cache key bits
///   collect_preserve    — the model's injectable-node set: every node id a
///                         campaign over these faults may target with an
///                         overlay, appended to the kernel optimizer's
///                         preserve set (see sim/kernel_opt.h) so injection
///                         sites stay materialized. State-injection models
///                         (SEU/MBU) contribute nothing and optimize
///                         maximally; overlay models push their rep sites
///   validate            — per-fault precondition checks
///
/// Adding a fault model = adding a FaultT, one specialization here, and a
/// public entry point wrapping run_model<Traits>() in the model's result
/// shape (see DESIGN.md, "adding a fault model").
template <FaultModel M>
struct FaultModelTraits;

/// The overlay op a model emits (lowered to OverlayEntry keep/flip masks).
enum class OverlayOp : std::uint8_t {
  kNone,   ///< no overlay — state-bit injection
  kXor,    ///< invert the lane (SET transient)
  kForce,  ///< drive the lane to a fixed value (stuck-at-0/1)
};

[[nodiscard]] constexpr const char* overlay_op_name(OverlayOp op) noexcept {
  switch (op) {
    case OverlayOp::kNone: return "none";
    case OverlayOp::kXor: return "xor";
    case OverlayOp::kForce: return "and-or";
  }
  return "?";
}

namespace traits_detail {

inline void set_key_bit(std::span<std::uint64_t> key, std::uint32_t bit) {
  key[bit >> 6] |= std::uint64_t{1} << (bit & 63);
}

}  // namespace traits_detail

template <>
struct FaultModelTraits<FaultModel::kSeu> {
  using FaultT = Fault;
  static constexpr FaultModel kModel = FaultModel::kSeu;
  static constexpr const char* kDescriptor = "seu:state-xor";
  static constexpr bool kUsesOverlay = false;
  static constexpr OverlayOp kOverlayOp = OverlayOp::kNone;
  static constexpr bool kOverlayEveryCycle = false;
  static constexpr bool kRetireOnConvergence = true;
  static constexpr bool kSiteKeyed = false;
  static constexpr bool kLatchThinning = false;

  static std::uint32_t cycle(const FaultT& f) noexcept { return f.cycle; }
  static std::uint32_t schedule_site(const FaultT& f) noexcept {
    return f.ff_index;
  }
  template <typename Engine>
  static void inject(Engine& engine, const FaultT& f, unsigned lane) {
    engine.flip_state_bit(f.ff_index, lane);
  }
  static constexpr std::uint32_t overlay_node(const FaultT&) noexcept {
    return kInvalidNode;
  }
  /// State-bit injection only — no gate slot needs materializing.
  static void collect_preserve(std::span<const FaultT>,
                               std::vector<NodeId>&) {}
  static void union_cone(const ConeBackend& cones,
                         std::span<std::uint64_t> mask, const FaultT& f) {
    cones.union_ff(mask, f.ff_index);
  }
  static void seed_key(std::span<std::uint64_t> key, const FaultT& f) {
    traits_detail::set_key_bit(key, f.ff_index);
  }
  static void validate(const Circuit& circuit, std::size_t num_cycles,
                       const FaultT& f) {
    FEMU_CHECK(f.cycle < num_cycles, "fault cycle ", f.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(f.ff_index < circuit.num_dffs(), "fault FF ", f.ff_index,
               " out of range");
  }
};

template <>
struct FaultModelTraits<FaultModel::kMbu> {
  using FaultT = MbuFault;
  static constexpr FaultModel kModel = FaultModel::kMbu;
  static constexpr const char* kDescriptor = "mbu:state-xor";
  static constexpr bool kUsesOverlay = false;
  static constexpr OverlayOp kOverlayOp = OverlayOp::kNone;
  static constexpr bool kOverlayEveryCycle = false;
  static constexpr bool kRetireOnConvergence = true;
  static constexpr bool kSiteKeyed = false;
  static constexpr bool kLatchThinning = false;

  static std::uint32_t cycle(const FaultT& f) noexcept { return f.cycle; }
  /// An MBU spans several FFs; its first (lowest-index) FF stands in for
  /// the fault in the affinity key. Approximate — the schedule is a
  /// performance knob, never a semantic one.
  static std::uint32_t schedule_site(const FaultT& f) noexcept {
    return f.ff_indices.front();
  }
  template <typename Engine>
  static void inject(Engine& engine, const FaultT& f, unsigned lane) {
    for (const std::uint32_t ff : f.ff_indices) {
      engine.flip_state_bit(ff, lane);
    }
  }
  static constexpr std::uint32_t overlay_node(const FaultT&) noexcept {
    return kInvalidNode;
  }
  /// State-bit injection only — no gate slot needs materializing.
  static void collect_preserve(std::span<const FaultT>,
                               std::vector<NodeId>&) {}
  static void union_cone(const ConeBackend& cones,
                         std::span<std::uint64_t> mask, const FaultT& f) {
    for (const std::uint32_t ff : f.ff_indices) {
      cones.union_ff(mask, ff);
    }
  }
  static void seed_key(std::span<std::uint64_t> key, const FaultT& f) {
    for (const std::uint32_t ff : f.ff_indices) {
      traits_detail::set_key_bit(key, ff);
    }
  }
  static void validate(const Circuit& circuit, std::size_t num_cycles,
                       const FaultT& f) {
    FEMU_CHECK(f.cycle < num_cycles, "MBU cycle ", f.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(!f.ff_indices.empty(), "MBU with no flip-flops");
    for (const std::uint32_t ff : f.ff_indices) {
      FEMU_CHECK(ff < circuit.num_dffs(), "MBU FF ", ff, " out of range");
    }
  }
};

template <>
struct FaultModelTraits<FaultModel::kSet> {
  using FaultT = SetFault;
  static constexpr FaultModel kModel = FaultModel::kSet;
  static constexpr const char* kDescriptor = "set:overlay-xor";
  static constexpr bool kUsesOverlay = true;
  static constexpr OverlayOp kOverlayOp = OverlayOp::kXor;
  static constexpr bool kOverlayEveryCycle = false;
  static constexpr bool kRetireOnConvergence = true;
  static constexpr bool kSiteKeyed = true;
  static constexpr bool kLatchThinning = true;

  static std::uint32_t cycle(const FaultT& f) noexcept { return f.cycle; }
  static std::uint32_t schedule_site(const FaultT& f) noexcept {
    return f.node;
  }
  template <typename Engine>
  static void inject(Engine&, const FaultT&, unsigned) {}  // overlay-borne
  static std::uint32_t overlay_node(const FaultT& f) noexcept {
    return f.node;
  }
  template <typename Word>
  static CompiledKernel::OverlayEntry<Word> overlay_entry(const FaultT&,
                                                          std::uint32_t dest,
                                                          unsigned lane) {
    return CompiledKernel::overlay_xor<Word>(
        dest, LaneTraits<Word>::lane_bit(lane));
  }
  /// Overlay-borne: every (collapsed) rep site must stay materialized.
  static void collect_preserve(std::span<const FaultT> faults,
                               std::vector<NodeId>& preserve) {
    for (const FaultT& f : faults) preserve.push_back(f.node);
  }
  static void union_cone(const ConeBackend& cones,
                         std::span<std::uint64_t> mask, const FaultT& f) {
    cones.union_gate(mask, f.node);
  }
  static void seed_key(std::span<std::uint64_t> key, const FaultT& f) {
    traits_detail::set_key_bit(key, f.node);
  }
  /// Pulse-width thinning: lanes at sub-full width draw a per-destination-FF
  /// setup-window-overlap decision (set_pulse_latches).
  static bool lane_thins(const FaultT& f) noexcept {
    return f.pulse_q < kSetPulseFull;
  }
  static bool latches(const FaultT& f, std::uint32_t ff) noexcept {
    return set_pulse_latches(f.node, f.cycle, ff, f.pulse_q);
  }
  static void validate(const Circuit& circuit, std::size_t num_cycles,
                       const FaultT& f) {
    FEMU_CHECK(f.cycle < num_cycles, "SET cycle ", f.cycle,
               " beyond testbench length ", num_cycles);
    FEMU_CHECK(f.node < circuit.node_count() &&
                   is_comb_cell(circuit.type(f.node)),
               "SET node ", f.node, " is not a combinational gate");
    FEMU_CHECK(f.pulse_q <= kSetPulseFull, "SET pulse step ", f.pulse_q,
               " beyond full width ", kSetPulseFull);
  }
};

template <>
struct FaultModelTraits<FaultModel::kStuckAt> {
  using FaultT = StuckAtFault;
  static constexpr FaultModel kModel = FaultModel::kStuckAt;
  static constexpr const char* kDescriptor = "stuckat:overlay-force";
  static constexpr bool kUsesOverlay = true;
  static constexpr OverlayOp kOverlayOp = OverlayOp::kForce;
  static constexpr bool kOverlayEveryCycle = true;
  static constexpr bool kRetireOnConvergence = false;
  static constexpr bool kSiteKeyed = true;
  static constexpr bool kLatchThinning = false;

  /// Permanent: present from reset, so every fault "injects" at cycle 0.
  static constexpr std::uint32_t cycle(const FaultT&) noexcept { return 0; }
  static std::uint32_t schedule_site(const FaultT& f) noexcept {
    return f.node;
  }
  template <typename Engine>
  static void inject(Engine&, const FaultT&, unsigned) {}  // overlay-borne
  static std::uint32_t overlay_node(const FaultT& f) noexcept {
    return f.node;
  }
  template <typename Word>
  static CompiledKernel::OverlayEntry<Word> overlay_entry(const FaultT& f,
                                                          std::uint32_t dest,
                                                          unsigned lane) {
    return CompiledKernel::overlay_force<Word>(
        dest, LaneTraits<Word>::lane_bit(lane), f.stuck_one);
  }
  /// Overlay-borne and permanent: every fault node must stay materialized.
  static void collect_preserve(std::span<const FaultT> faults,
                               std::vector<NodeId>& preserve) {
    for (const FaultT& f : faults) preserve.push_back(f.node);
  }
  static void union_cone(const ConeBackend& cones,
                         std::span<std::uint64_t> mask, const FaultT& f) {
    cones.union_gate(mask, f.node);
  }
  static void seed_key(std::span<std::uint64_t> key, const FaultT& f) {
    traits_detail::set_key_bit(key, f.node);
  }
  static void validate(const Circuit& circuit, std::size_t /*num_cycles*/,
                       const FaultT& f) {
    FEMU_CHECK(f.node < circuit.node_count() &&
                   is_comb_cell(circuit.type(f.node)),
               "stuck-at node ", f.node, " is not a combinational gate");
  }
};

/// Descriptor name of a model ("model:mechanism") — the string the CLI and
/// bench JSON report next to the model name.
[[nodiscard]] constexpr const char* fault_model_descriptor(
    FaultModel model) noexcept {
  switch (model) {
    case FaultModel::kSeu: return FaultModelTraits<FaultModel::kSeu>::kDescriptor;
    case FaultModel::kMbu: return FaultModelTraits<FaultModel::kMbu>::kDescriptor;
    case FaultModel::kSet: return FaultModelTraits<FaultModel::kSet>::kDescriptor;
    case FaultModel::kStuckAt:
      return FaultModelTraits<FaultModel::kStuckAt>::kDescriptor;
  }
  return "?";
}

[[nodiscard]] constexpr OverlayOp fault_model_overlay_op(
    FaultModel model) noexcept {
  switch (model) {
    case FaultModel::kSeu: return FaultModelTraits<FaultModel::kSeu>::kOverlayOp;
    case FaultModel::kMbu: return FaultModelTraits<FaultModel::kMbu>::kOverlayOp;
    case FaultModel::kSet: return FaultModelTraits<FaultModel::kSet>::kOverlayOp;
    case FaultModel::kStuckAt:
      return FaultModelTraits<FaultModel::kStuckAt>::kOverlayOp;
  }
  return OverlayOp::kNone;
}

/// One lane group of a model's faults, normalized for the generic group
/// runners: lane k carries faults[k]. Answers, per lane, when the fault
/// enters (cycle), how it enters (inject / overlay_entry), which structural
/// cone bounds its divergence (union_cone) and which bits identify its
/// injection sites in the sub-program cache key (seed_key) — all by
/// delegation to the model's FaultModelTraits, so the group runners are
/// written once against this view and specialize per model purely through
/// `if constexpr` on the descriptor flags (SEU/MBU codegen carries no
/// overlay or thinning code at all).
template <typename Traits>
struct ModelView {
  using FaultT = typename Traits::FaultT;

  std::span<const FaultT> faults;
  ConeBackend cones;

  static constexpr bool kHasOverlay = Traits::kUsesOverlay;
  static constexpr bool kOverlayEveryCycle = Traits::kOverlayEveryCycle;
  static constexpr bool kRetireOnConvergence = Traits::kRetireOnConvergence;
  static constexpr bool kKeyOverNodes = Traits::kSiteKeyed;
  static constexpr bool kLatchThinning = Traits::kLatchThinning;

  [[nodiscard]] std::size_t size() const noexcept { return faults.size(); }
  [[nodiscard]] std::uint32_t cycle(std::size_t i) const {
    return Traits::cycle(faults[i]);
  }
  template <typename Engine>
  void inject(Engine& engine, unsigned lane) const {
    Traits::inject(engine, faults[lane], lane);
  }
  [[nodiscard]] std::uint32_t overlay_node(std::size_t i) const {
    return Traits::overlay_node(faults[i]);
  }
  template <typename Word>
  [[nodiscard]] CompiledKernel::OverlayEntry<Word> overlay_entry(
      std::size_t i, std::uint32_t dest) const {
    return Traits::template overlay_entry<Word>(faults[i], dest,
                                                static_cast<unsigned>(i));
  }
  void union_cone(std::span<std::uint64_t> mask, std::size_t i) const {
    Traits::union_cone(cones, mask, faults[i]);
  }
  void union_ff_cone(std::span<std::uint64_t> mask, std::size_t ff) const {
    cones.union_ff(mask, ff);
  }
  void seed_key(std::span<std::uint64_t> key, std::size_t i) const {
    Traits::seed_key(key, faults[i]);
  }
  [[nodiscard]] bool lane_thins(std::size_t i) const {
    return Traits::lane_thins(faults[i]);
  }
  [[nodiscard]] bool latches(std::size_t i, std::uint32_t ff) const {
    return Traits::latches(faults[i], ff);
  }
};

}  // namespace femu
