#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/campaign_result.h"
#include "fault/set_model.h"
#include "netlist/circuit.h"
#include "sim/golden.h"
#include "stim/testbench.h"

namespace femu {

/// A single stuck-at fault: the output of combinational gate `node` is
/// permanently forced to `stuck_one` (stuck-at-1) or 0 (stuck-at-0), from
/// reset through every testbench cycle — the classic manufacturing-test
/// fault model, graded here with **test-pattern semantics**: the campaign
/// asks whether the testbench *detects* the fault (any primary-output
/// deviation from the golden run, at any cycle). In the shared three-way
/// grading a detected fault is kFailure (detect_cycle = first deviating
/// cycle); an undetected fault is kLatent when the final state still
/// differs from golden (excited but unobserved) and kSilent when it does
/// not (never excited, or always logically masked). Unlike the transient
/// models a stuck-at lane is never retired on state re-convergence — the
/// fault is permanent and can be re-excited any later cycle — so silent
/// outcomes carry no converge_cycle.
struct StuckAtFault {
  NodeId node = 0;
  bool stuck_one = false;

  friend bool operator==(const StuckAtFault&, const StuckAtFault&) = default;
};

[[nodiscard]] constexpr const char* stuckat_polarity_name(
    bool stuck_one) noexcept {
  return stuck_one ? "sa1" : "sa0";
}

/// The complete stuck-at fault list: both polarities of every site,
/// site-major (sa0 then sa1 per site). Site enumeration and fanout-free
/// collapse are reused from SetSites — a chain member's fault translates to
/// its representative with the chain parity applied to the polarity
/// (stuck-at-v at site == stuck-at-(v XOR rep_inverted) at rep), so the
/// collapsed list carries 2 faults per equivalence class. Pass
/// collapsed = false for every raw (site, polarity) pair instead.
[[nodiscard]] std::vector<StuckAtFault> complete_stuckat_fault_list(
    const SetSites& sites, bool collapsed = true);

/// Uniform random sample (without replacement) of `count` faults from the
/// complete collapsed list, in list order.
[[nodiscard]] std::vector<StuckAtFault> sample_stuckat_fault_list(
    const SetSites& sites, std::size_t count, std::uint64_t seed);

/// Result of a stuck-at campaign. Test-pattern grading reads
/// counts.failure as "detected by this testbench"; fault coverage is the
/// detected fraction over the graded list.
struct StuckAtCampaignResult {
  std::vector<StuckAtFault> faults;
  std::vector<FaultOutcome> outcomes;
  ClassCounts counts;

  /// Detected / total — the test-pattern fault coverage.
  [[nodiscard]] double fault_coverage() const noexcept {
    return counts.failure_fraction();
  }
};

/// Expands a representative-site campaign to the full site set: every
/// member of a graded representative's class receives the representative's
/// outcome under the member's own polarity (chain parity applied — see
/// SetSites::rep_inverted). Faults on non-representative sites pass through
/// unchanged.
[[nodiscard]] StuckAtCampaignResult expand_collapsed_stuckat_result(
    const SetSites& sites, const StuckAtCampaignResult& rep_result);

/// Interpreted per-fault stuck-at reference simulator.
///
/// One fault at a time: start from the golden reset state and evaluate the
/// circuit graph directly with the site's value forced every cycle —
/// kernel-free, so it cross-validates the compiled force-overlay engines
/// from a fully independent implementation. Same classification mapping as
/// the campaign engine (failure on first output mismatch, else
/// latent/silent by final-state comparison).
class SerialStuckAtSimulator {
 public:
  SerialStuckAtSimulator(const Circuit& circuit, const Testbench& testbench);

  /// Grades every fault; outcomes align with the input order.
  [[nodiscard]] StuckAtCampaignResult run(std::span<const StuckAtFault> faults);

  [[nodiscard]] const GoldenTrace& golden() const noexcept { return golden_; }

 private:
  const Circuit& circuit_;
  const Testbench& testbench_;
  GoldenTrace golden_;
  std::vector<NodeId> dff_d_;
  std::vector<char> values_;  // per node, current settle
  std::vector<char> state_;   // per DFF
};

}  // namespace femu
