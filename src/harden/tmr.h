#pragma once

#include <vector>

#include "netlist/circuit.h"

namespace femu::harden {

/// Result of a triple-modular-redundancy transform.
struct TmrResult {
  Circuit circuit{"tmr"};
  /// For every flip-flop of the hardened circuit (dffs() order), the index of
  /// the original flip-flop it implements. Protected FFs appear three times.
  std::vector<std::size_t> origin;
  std::size_t num_protected = 0;
};

/// Hardens the selected flip-flops with TMR: each protected FF becomes three
/// replicas whose outputs feed a majority voter; all replicas capture the
/// same (voter-corrected) next-state, so a single SEU in any replica is
/// masked combinationally and self-heals at the next clock edge — such
/// faults grade as silent with one-cycle convergence (a property test pins
/// this). `protect` is indexed by original FF position; an empty vector
/// protects everything.
///
/// This is the re-design loop the paper's introduction motivates: grade,
/// locate weak flip-flops (CampaignResult::weakest_ffs), protect them,
/// re-grade.
[[nodiscard]] TmrResult apply_tmr(const Circuit& circuit,
                                  const std::vector<bool>& protect = {});

}  // namespace femu::harden
