#include "harden/tmr.h"

#include "common/error.h"
#include "common/strings.h"
#include "netlist/rewrite.h"

namespace femu::harden {

TmrResult apply_tmr(const Circuit& src, const std::vector<bool>& protect) {
  src.validate();
  const std::size_t n = src.num_dffs();
  FEMU_CHECK(protect.empty() || protect.size() == n,
             "protect mask size ", protect.size(), " != FF count ", n);
  const auto is_protected = [&protect](std::size_t i) {
    return protect.empty() || protect[i];
  };

  TmrResult result;
  result.circuit = Circuit(src.name() + "_tmr");
  Circuit& dst = result.circuit;
  NodeMap map(src.node_count());

  for (const NodeId pi : src.inputs()) {
    map.bind(pi, dst.add_input(src.node_name(pi)));
  }

  struct Replica {
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
    NodeId c = kInvalidNode;
  };
  std::vector<Replica> replicas(n);

  for (std::size_t i = 0; i < n; ++i) {
    const std::string base = src.node_name(src.dffs()[i]);
    if (is_protected(i)) {
      Replica& r = replicas[i];
      r.a = dst.add_dff(base);
      r.b = dst.add_dff(str_cat(base, "_tmrB"));
      r.c = dst.add_dff(str_cat(base, "_tmrC"));
      result.origin.push_back(i);
      result.origin.push_back(i);
      result.origin.push_back(i);
      ++result.num_protected;
      // Majority voter: (a&b) | (a&c) | (b&c).
      const NodeId ab = dst.add_and(r.a, r.b);
      const NodeId ac = dst.add_and(r.a, r.c);
      const NodeId bc = dst.add_and(r.b, r.c);
      map.bind(src.dffs()[i], dst.add_or(dst.add_or(ab, ac), bc));
    } else {
      const NodeId ff = dst.add_dff(base);
      replicas[i].a = ff;
      result.origin.push_back(i);
      map.bind(src.dffs()[i], ff);
    }
  }

  copy_combinational(src, dst, map);

  for (std::size_t i = 0; i < n; ++i) {
    const NodeId d = map.at(src.dff_d(src.dffs()[i]));
    dst.connect_dff(replicas[i].a, d);
    if (is_protected(i)) {
      dst.connect_dff(replicas[i].b, d);
      dst.connect_dff(replicas[i].c, d);
    }
  }
  for (const auto& port : src.outputs()) {
    dst.add_output(port.name, map.at(port.driver));
  }
  dst.validate();
  return result;
}

}  // namespace femu::harden
