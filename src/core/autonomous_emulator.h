#pragma once

#include <optional>
#include <span>

#include "core/board.h"
#include "core/controller_cost.h"
#include "core/cycle_model.h"
#include "core/instrument.h"
#include "core/ram_layout.h"
#include "core/technique.h"
#include "fault/fault_list.h"
#include "fault/parallel_faultsim.h"
#include "map/lut_mapper.h"
#include "stim/testbench.h"

namespace femu {

/// Configuration of the modelled emulation platform.
struct EmulatorOptions {
  double clock_mhz = 25.0;          ///< the paper's emulation frequency
  Board board{};                    ///< RC1000/Virtex-2000E by default
  LutMapper::Options map_options{};
  std::size_t ram_word = 32;        ///< board RAM data width
  bool compute_area = true;         ///< run the LUT mapper on the instrumented
                                    ///< netlist (skip for timing-only sweeps)
  bool enforce_fit = false;         ///< throw CapacityError when the system
                                    ///< exceeds the board
  CampaignConfig campaign{};        ///< grading-engine config (lane width,
                                    ///< cone policy, threads, ...)
};

/// Synthesis-side results of one technique on one circuit (Table 1 row).
struct AreaReport {
  LutMapper::Result original;
  LutMapper::Result instrumented;
  ControllerCost controller;
  RamLayout ram;

  /// Instrumented circuit + controller (the paper's "Emulator System").
  [[nodiscard]] SystemResources system() const {
    SystemResources resources;
    resources.luts = instrumented.num_luts + controller.luts;
    resources.ffs = instrumented.num_ffs + controller.ffs;
    resources.fpga_ram_bits = ram.fpga_bits();
    resources.board_ram_bits = ram.board_bits();
    return resources;
  }

  [[nodiscard]] double circuit_lut_overhead() const {
    return ratio(instrumented.num_luts, original.num_luts);
  }
  [[nodiscard]] double circuit_ff_overhead() const {
    return ratio(instrumented.num_ffs, original.num_ffs);
  }
  [[nodiscard]] double system_lut_overhead() const {
    return ratio(instrumented.num_luts + controller.luts, original.num_luts);
  }
  [[nodiscard]] double system_ff_overhead() const {
    return ratio(instrumented.num_ffs + controller.ffs, original.num_ffs);
  }

 private:
  static double ratio(std::size_t now, std::size_t base) {
    return base == 0 ? 0.0
                     : (static_cast<double>(now) - static_cast<double>(base)) /
                           static_cast<double>(base);
  }
};

/// Complete result of one autonomous-emulation campaign: the fault grading,
/// the exact cycle account (Table 2), and the synthesis view (Table 1).
struct EmulationReport {
  Technique technique = Technique::kMaskScan;
  CampaignResult grading;
  CampaignCycles cycles;
  double emulation_seconds = 0.0;  ///< cycles at the configured clock
  double us_per_fault = 0.0;
  std::optional<AreaReport> area;  ///< present when compute_area
  FitReport fit;                   ///< meaningful when area is present
  double host_engine_seconds = 0.0;  ///< wall time of the software engine
};

/// The paper's system: an FPGA-resident campaign controller that needs the
/// host only to download the design and read back the classification RAM.
///
/// This facade models that system on the simulation substrate: the fault
/// grading itself comes from the 64-way parallel fault simulator, the
/// emulated wall-clock comes from the exact controller cycle account
/// (cross-validated against the literal instrumented-netlist engine by the
/// integration tests), and the area view comes from instrumenting the real
/// netlist and running the LUT mapper on it.
class AutonomousEmulator {
 public:
  AutonomousEmulator(const Circuit& circuit, const Testbench& testbench,
                     EmulatorOptions options = {});

  /// Runs a campaign over `faults` (any schedule; cycle-major is canonical).
  [[nodiscard]] EmulationReport run(Technique technique,
                                    std::span<const Fault> faults);

  /// Runs the complete N x T single-SEU campaign (the paper's experiment).
  [[nodiscard]] EmulationReport run_complete(Technique technique);

  [[nodiscard]] const GoldenTrace& golden() const noexcept {
    return engine_.golden();
  }
  [[nodiscard]] const Circuit& circuit() const noexcept { return circuit_; }
  [[nodiscard]] const EmulatorOptions& options() const noexcept {
    return options_;
  }
  /// The underlying campaign engine — read-only access to the per-run work
  /// metrics (lane occupancy, eval instruction/byte counters, group widths).
  [[nodiscard]] const ParallelFaultSimulator& engine() const noexcept {
    return engine_;
  }
  /// Mutable engine access for campaign-lifecycle hooks that live on the
  /// engine (streaming retire callback, signature capture) — the grading
  /// semantics stay fully owned by this emulator.
  [[nodiscard]] ParallelFaultSimulator& engine() noexcept { return engine_; }

 private:
  [[nodiscard]] AreaReport compute_area(Technique technique,
                                        std::size_t num_faults) const;

  const Circuit& circuit_;
  const Testbench& testbench_;
  EmulatorOptions options_;
  ParallelFaultSimulator engine_;
};

}  // namespace femu
