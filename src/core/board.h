#pragma once

#include <cstdint>
#include <string>

namespace femu {

/// Emulation board resource model. Defaults describe the paper's platform:
/// a Celoxica RC1000 carrying a Xilinx Virtex-2000E (XCV2000E: 19,200 slices
/// = 38,400 4-LUTs + 38,400 FFs, 160 block RAMs x 4 kbit) and 8 MB of
/// on-board SRAM.
struct Board {
  std::string name = "RC1000 (Virtex-2000E)";
  std::size_t fpga_luts = 38'400;
  std::size_t fpga_ffs = 38'400;
  std::uint64_t fpga_bram_bits = 160ull * 4096;      // 655,360
  std::uint64_t board_ram_bits = 8ull * 1024 * 1024 * 8;  // 8 MB
  double clock_mhz = 25.0;
};

/// Resource demand of a complete emulator system (instrumented circuit +
/// controller + memories).
struct SystemResources {
  std::size_t luts = 0;
  std::size_t ffs = 0;
  std::uint64_t fpga_ram_bits = 0;
  std::uint64_t board_ram_bits = 0;
};

/// Fit check result with utilisation fractions (1.0 = full).
struct FitReport {
  bool fits = true;
  double lut_util = 0.0;
  double ff_util = 0.0;
  double fpga_ram_util = 0.0;
  double board_ram_util = 0.0;
};

[[nodiscard]] inline FitReport check_fit(const Board& board,
                                         const SystemResources& need) {
  FitReport report;
  report.lut_util = static_cast<double>(need.luts) /
                    static_cast<double>(board.fpga_luts);
  report.ff_util =
      static_cast<double>(need.ffs) / static_cast<double>(board.fpga_ffs);
  report.fpga_ram_util = static_cast<double>(need.fpga_ram_bits) /
                         static_cast<double>(board.fpga_bram_bits);
  report.board_ram_util = static_cast<double>(need.board_ram_bits) /
                          static_cast<double>(board.board_ram_bits);
  report.fits = report.lut_util <= 1.0 && report.ff_util <= 1.0 &&
                report.fpga_ram_util <= 1.0 && report.board_ram_util <= 1.0;
  return report;
}

}  // namespace femu
