#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace femu {

/// The three autonomous fault-injection techniques proposed by the paper.
enum class Technique : std::uint8_t {
  /// One mask flip-flop per circuit flip-flop selects the injection target;
  /// a global strobe flips the masked bit. No state restore: every fault
  /// re-runs the testbench from cycle 0; early exit on failure only.
  kMaskScan,
  /// A shadow scan chain inserts the pre-computed faulty state image, so
  /// emulation starts directly at the injection cycle. Costs ~N_ff scan
  /// cycles per fault; wins when the testbench is much longer than the
  /// flip-flop count.
  kStateScan,
  /// Figure-1 instrument: golden + faulty + mask + state flip-flops per
  /// circuit flip-flop. Golden and faulty runs interleave on alternate
  /// clocks; an on-chip comparator detects fault-effect disappearance, so
  /// silent faults (often the plurality) retire within a few cycles.
  kTimeMux,
};

[[nodiscard]] constexpr std::string_view technique_name(
    Technique technique) noexcept {
  switch (technique) {
    case Technique::kMaskScan: return "mask-scan";
    case Technique::kStateScan: return "state-scan";
    case Technique::kTimeMux: return "time-multiplexed";
  }
  return "?";
}

/// All techniques, for sweeps.
inline constexpr std::array<Technique, 3> kAllTechniques = {
    Technique::kMaskScan, Technique::kStateScan, Technique::kTimeMux};

}  // namespace femu
