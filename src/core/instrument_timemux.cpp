#include "common/error.h"
#include "common/strings.h"
#include "core/instrument.h"
#include "netlist/rewrite.h"
#include "rtl/builder.h"

namespace femu {

InstrumentedCircuit instrument_time_mux(const Circuit& src) {
  src.validate();
  const std::size_t n = src.num_dffs();
  FEMU_CHECK(n > 0, "time-mux: circuit has no flip-flops to instrument");

  InstrumentedCircuit inst;
  inst.technique = Technique::kTimeMux;
  inst.num_orig_inputs = src.num_inputs();
  inst.num_orig_outputs = src.num_outputs();
  inst.num_orig_dffs = n;
  inst.circuit = Circuit(src.name() + "_timemux");
  Circuit& dst = inst.circuit;
  rtl::Builder b(dst);

  NodeMap map(src.node_count());
  for (const NodeId pi : src.inputs()) {
    map.bind(pi, dst.add_input(src.node_name(pi)));
  }
  inst.ports.inject = dst.num_inputs();
  const NodeId inject = dst.add_input("ctl_inject");
  inst.ports.mask_shift = dst.num_inputs();
  const NodeId mask_shift = dst.add_input("ctl_mask_shift");
  inst.ports.mask_in = dst.num_inputs();
  const NodeId mask_in = dst.add_input("ctl_mask_in");
  inst.ports.save_state = dst.num_inputs();
  const NodeId save_state = dst.add_input("ctl_save");
  inst.ports.load_state = dst.num_inputs();
  const NodeId load_state = dst.add_input("ctl_load");
  inst.ports.ena_golden = dst.num_inputs();
  const NodeId ena_golden = dst.add_input("ctl_ena_golden");
  inst.ports.ena_faulty = dst.num_inputs();
  const NodeId ena_faulty = dst.add_input("ctl_ena_faulty");

  // Figure-1 instrument: four FFs per original FF.
  std::vector<NodeId> golden_ffs(n), faulty_ffs(n), mask_ffs(n), state_ffs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string base = src.node_name(src.dffs()[i]);
    golden_ffs[i] = dst.add_dff(base);  // keeps the original name
    faulty_ffs[i] = dst.add_dff(str_cat("faulty_", base));
    mask_ffs[i] = dst.add_dff(str_cat("mask", i));
    state_ffs[i] = dst.add_dff(str_cat("ckpt", i));
    inst.golden_ffs.push_back(dst.dff_index(golden_ffs[i]));
    inst.main_ffs.push_back(dst.dff_index(faulty_ffs[i]));
    inst.mask_ffs.push_back(dst.dff_index(mask_ffs[i]));
    inst.state_ffs.push_back(dst.dff_index(state_ffs[i]));
  }

  // The combinational network is shared between the two machines: each
  // original FF output becomes DataOut = ena_faulty ? FaultyQ : GoldenQ.
  for (std::size_t i = 0; i < n; ++i) {
    map.bind(src.dffs()[i],
             dst.add_mux(ena_faulty, golden_ffs[i], faulty_ffs[i]));
  }
  copy_combinational(src, dst, map);

  for (std::size_t i = 0; i < n; ++i) {
    const NodeId d_orig = map.at(src.dff_d(src.dffs()[i]));
    // Golden FF: load ? checkpoint : (ena_golden ? D : hold).
    const NodeId g_run = dst.add_mux(ena_golden, golden_ffs[i], d_orig);
    dst.connect_dff(golden_ffs[i],
                    dst.add_mux(load_state, g_run, state_ffs[i]));
    // Faulty FF: load ? checkpoint ^ (inject & mask) : (ena_faulty ? D : hold)
    // — the SEU is applied while restoring the injection-cycle state.
    const NodeId inj = dst.add_and(inject, mask_ffs[i]);
    const NodeId loaded = dst.add_xor(state_ffs[i], inj);
    const NodeId f_run = dst.add_mux(ena_faulty, faulty_ffs[i], d_orig);
    dst.connect_dff(faulty_ffs[i], dst.add_mux(load_state, f_run, loaded));
    // Checkpoint FF: save ? GoldenQ : hold.
    dst.connect_dff(state_ffs[i],
                    dst.add_mux(save_state, state_ffs[i], golden_ffs[i]));
    // Mask FF: one-hot ring chain, as in mask-scan.
    const NodeId from = (i == 0) ? mask_in : mask_ffs[i - 1];
    dst.connect_dff(mask_ffs[i], dst.add_mux(mask_shift, mask_ffs[i], from));
  }

  // Golden-output capture: during the golden phase the shared network shows
  // golden values; out_reg latches them so the faulty phase can compare.
  std::vector<NodeId> outreg_ffs;
  outreg_ffs.reserve(src.num_outputs());
  for (std::size_t j = 0; j < src.num_outputs(); ++j) {
    const NodeId reg = dst.add_dff(str_cat("outreg", j));
    inst.outreg_ffs.push_back(dst.dff_index(reg));
    outreg_ffs.push_back(reg);
    const NodeId po = map.at(src.outputs()[j].driver);
    dst.connect_dff(reg, dst.add_mux(ena_golden, reg, po));
  }

  // detect: some primary output of the faulty machine deviates from the
  // captured golden outputs (sample during the faulty phase).
  rtl::Bus diffs;
  diffs.reserve(src.num_outputs());
  for (std::size_t j = 0; j < src.num_outputs(); ++j) {
    diffs.push_back(
        dst.add_xor(map.at(src.outputs()[j].driver), outreg_ffs[j]));
  }
  const NodeId detect = b.or_reduce(diffs);

  // state_equal: the fault effect has disappeared (golden == faulty on every
  // FF) — the early-exit signal that makes time-mux the fastest technique.
  rtl::Bus equals;
  equals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    equals.push_back(
        dst.add_gate(CellType::kXnor, golden_ffs[i], faulty_ffs[i]));
  }
  const NodeId state_equal = b.and_reduce(equals);

  for (const auto& port : src.outputs()) {
    dst.add_output(port.name, map.at(port.driver));
  }
  inst.ports.mask_out = dst.num_outputs();
  dst.add_output("ctl_mask_out", mask_ffs[n - 1]);
  inst.ports.detect = dst.num_outputs();
  dst.add_output("ctl_detect", detect);
  inst.ports.state_equal = dst.num_outputs();
  dst.add_output("ctl_state_equal", state_equal);

  dst.validate();
  return inst;
}

InstrumentedCircuit instrument(const Circuit& circuit, Technique technique) {
  switch (technique) {
    case Technique::kMaskScan: return instrument_mask_scan(circuit);
    case Technique::kStateScan: return instrument_state_scan(circuit);
    case Technique::kTimeMux: return instrument_time_mux(circuit);
  }
  FEMU_CHECK(false, "unknown technique");
  return {};
}

}  // namespace femu
