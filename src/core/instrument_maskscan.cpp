#include "common/error.h"
#include "common/strings.h"
#include "core/instrument.h"
#include "netlist/rewrite.h"

namespace femu {

InstrumentedCircuit instrument_mask_scan(const Circuit& src) {
  src.validate();
  const std::size_t n = src.num_dffs();
  FEMU_CHECK(n > 0, "mask-scan: circuit has no flip-flops to instrument");

  InstrumentedCircuit inst;
  inst.technique = Technique::kMaskScan;
  inst.num_orig_inputs = src.num_inputs();
  inst.num_orig_outputs = src.num_outputs();
  inst.num_orig_dffs = n;
  inst.circuit = Circuit(src.name() + "_maskscan");
  Circuit& dst = inst.circuit;

  NodeMap map(src.node_count());
  for (const NodeId pi : src.inputs()) {
    map.bind(pi, dst.add_input(src.node_name(pi)));
  }
  // Control inputs come after the functional ones so the original testbench
  // bits keep their positions.
  inst.ports.init = dst.num_inputs();
  const NodeId init = dst.add_input("ctl_init");
  inst.ports.inject = dst.num_inputs();
  const NodeId inject = dst.add_input("ctl_inject");
  inst.ports.mask_shift = dst.num_inputs();
  const NodeId mask_shift = dst.add_input("ctl_mask_shift");
  inst.ports.mask_in = dst.num_inputs();
  const NodeId mask_in = dst.add_input("ctl_mask_in");

  // Main flip-flops first (indices 0..n-1 mirror the original state order),
  // then the mask chain.
  std::vector<NodeId> main_ffs;
  std::vector<NodeId> mask_ffs;
  main_ffs.reserve(n);
  mask_ffs.reserve(n);
  for (const NodeId ff : src.dffs()) {
    const NodeId main = dst.add_dff(src.node_name(ff));
    inst.main_ffs.push_back(dst.dff_index(main));
    main_ffs.push_back(main);
    map.bind(ff, main);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId mask = dst.add_dff(str_cat("mask", i));
    inst.mask_ffs.push_back(dst.dff_index(mask));
    mask_ffs.push_back(mask);
  }

  copy_combinational(src, dst, map);

  // Injection network per FF: D = init ? inj : (D_orig ^ inj), with
  // inj = inject & mask. The init path lets the controller establish the
  // reset state (optionally pre-flipped, for cycle-0 faults) in one cycle.
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId d_orig = map.at(src.dff_d(src.dffs()[i]));
    const NodeId inj = dst.add_and(inject, mask_ffs[i]);
    const NodeId flipped = dst.add_xor(d_orig, inj);
    dst.connect_dff(main_ffs[i], dst.add_mux(init, flipped, inj));
  }

  // Mask chain: holds unless ctl_mask_shift; the controller closes the ring
  // by feeding mask_out back into mask_in (one cycle advances the one-hot).
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId from = (i == 0) ? mask_in : mask_ffs[i - 1];
    dst.connect_dff(mask_ffs[i],
                    dst.add_mux(mask_shift, mask_ffs[i], from));
  }

  for (const auto& port : src.outputs()) {
    dst.add_output(port.name, map.at(port.driver));
  }
  inst.ports.mask_out = dst.num_outputs();
  dst.add_output("ctl_mask_out", mask_ffs[n - 1]);

  dst.validate();
  return inst;
}

}  // namespace femu
