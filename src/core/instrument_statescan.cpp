#include "common/error.h"
#include "common/strings.h"
#include "core/instrument.h"
#include "netlist/rewrite.h"

namespace femu {

InstrumentedCircuit instrument_state_scan(const Circuit& src) {
  src.validate();
  const std::size_t n = src.num_dffs();
  FEMU_CHECK(n > 0, "state-scan: circuit has no flip-flops to instrument");

  InstrumentedCircuit inst;
  inst.technique = Technique::kStateScan;
  inst.num_orig_inputs = src.num_inputs();
  inst.num_orig_outputs = src.num_outputs();
  inst.num_orig_dffs = n;
  inst.circuit = Circuit(src.name() + "_statescan");
  Circuit& dst = inst.circuit;

  NodeMap map(src.node_count());
  for (const NodeId pi : src.inputs()) {
    map.bind(pi, dst.add_input(src.node_name(pi)));
  }
  inst.ports.scan_en = dst.num_inputs();
  const NodeId scan_en = dst.add_input("ctl_scan_en");
  inst.ports.scan_in = dst.num_inputs();
  const NodeId scan_in = dst.add_input("ctl_scan_in");
  inst.ports.save_state = dst.num_inputs();
  const NodeId save_state = dst.add_input("ctl_save");
  inst.ports.load_state = dst.num_inputs();
  const NodeId load_state = dst.add_input("ctl_load");
  inst.ports.run_en = dst.num_inputs();
  const NodeId run_en = dst.add_input("ctl_run");

  std::vector<NodeId> main_ffs;
  std::vector<NodeId> shadow_ffs;
  main_ffs.reserve(n);
  shadow_ffs.reserve(n);
  for (const NodeId ff : src.dffs()) {
    const NodeId main = dst.add_dff(src.node_name(ff));
    inst.main_ffs.push_back(dst.dff_index(main));
    main_ffs.push_back(main);
    map.bind(ff, main);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId shadow = dst.add_dff(str_cat("shadow", i));
    inst.shadow_ffs.push_back(dst.dff_index(shadow));
    shadow_ffs.push_back(shadow);
  }

  copy_combinational(src, dst, map);

  // Main FF: load ? shadow : (run ? D_orig : hold). The hold leg keeps the
  // machine frozen while the shadow chain is shifting the next faulty image.
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId d_orig = map.at(src.dff_d(src.dffs()[i]));
    const NodeId run_mux = dst.add_mux(run_en, main_ffs[i], d_orig);
    dst.connect_dff(main_ffs[i],
                    dst.add_mux(load_state, run_mux, shadow_ffs[i]));
  }

  // Shadow FF: scan ? previous-in-chain : (save ? main : hold). The save leg
  // parks the final faulty state so it can be ejected (and compared against
  // the golden final state) while the next image shifts in.
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId from = (i == 0) ? scan_in : shadow_ffs[i - 1];
    const NodeId save_mux = dst.add_mux(save_state, shadow_ffs[i], main_ffs[i]);
    dst.connect_dff(shadow_ffs[i], dst.add_mux(scan_en, save_mux, from));
  }

  for (const auto& port : src.outputs()) {
    dst.add_output(port.name, map.at(port.driver));
  }
  inst.ports.scan_out = dst.num_outputs();
  dst.add_output("ctl_scan_out", shadow_ffs[n - 1]);

  dst.validate();
  return inst;
}

}  // namespace femu
