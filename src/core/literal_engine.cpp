#include "core/literal_engine.h"

#include "common/error.h"

namespace femu {

LiteralEngine::LiteralEngine(const Circuit& original,
                             const Testbench& testbench, Technique technique)
    : original_(original),
      testbench_(testbench),
      inst_(instrument(original, technique)),
      golden_(capture_golden(original, testbench.vectors())) {
  FEMU_CHECK(testbench.input_width() == original.num_inputs(),
             "testbench width ", testbench.input_width(), " != circuit PI ",
             original.num_inputs());
}

BitVec LiteralEngine::frame(const BitVec& orig_inputs) const {
  BitVec in(inst_.circuit.num_inputs());
  for (std::size_t i = 0; i < inst_.num_orig_inputs; ++i) {
    in.set(i, orig_inputs.get(i));
  }
  return in;
}

BitVec LiteralEngine::idle_frame() const {
  return BitVec(inst_.circuit.num_inputs());
}

bool LiteralEngine::orig_outputs_differ(const BitVec& got, const BitVec& want,
                                        std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (got.get(i) != want.get(i)) {
      return true;
    }
  }
  return false;
}

bool LiteralEngine::mask_out_bit(const LevelizedSimulator& sim) const {
  return sim.state_bit(inst_.mask_ffs[inst_.num_orig_dffs - 1]);
}

std::uint64_t LiteralEngine::position_mask(LevelizedSimulator& sim,
                                           std::size_t ff) {
  const std::uint64_t cost =
      mask_ring_cost(mask_pos_, ff, inst_.num_orig_dffs);
  const bool filling = mask_pos_ == static_cast<std::size_t>(-1);
  for (std::uint64_t k = 0; k < cost; ++k) {
    BitVec in = idle_frame();
    in.set(inst_.ports.mask_shift, true);
    // First fill cycle inserts the '1'; afterwards the controller closes the
    // ring by feeding mask_out back into mask_in.
    in.set(inst_.ports.mask_in,
           (filling && k == 0) ? true : mask_out_bit(sim));
    sim.eval(in);
    sim.step();
  }
  mask_pos_ = ff;
  return cost;
}

LiteralEngine::Result LiteralEngine::run(std::span<const Fault> faults) {
  mask_pos_ = static_cast<std::size_t>(-1);
  for (const Fault& fault : faults) {
    FEMU_CHECK(fault.cycle < testbench_.num_cycles(), "fault cycle ",
               fault.cycle, " beyond testbench");
    FEMU_CHECK(fault.ff_index < inst_.num_orig_dffs, "fault FF ",
               fault.ff_index, " out of range");
  }
  switch (inst_.technique) {
    case Technique::kMaskScan: return run_mask_scan(faults);
    case Technique::kStateScan: return run_state_scan(faults);
    case Technique::kTimeMux: return run_time_mux(faults);
  }
  FEMU_CHECK(false, "unknown technique");
  return {};
}

// ---------------------------------------------------------------------------
// mask-scan
// ---------------------------------------------------------------------------

LiteralEngine::Result LiteralEngine::run_mask_scan(
    std::span<const Fault> faults) {
  const std::size_t t_end = testbench_.num_cycles();
  const std::size_t n = inst_.num_orig_dffs;
  LevelizedSimulator sim(inst_.circuit);
  Result res;
  std::vector<FaultOutcome> outcomes(faults.size());

  // Golden run on the instrumented circuit (controls idle): fills the
  // response RAM and the golden-final-state register. The equality checks
  // double as instrumentation-transparency assertions.
  for (std::size_t t = 0; t < t_end; ++t) {
    const BitVec out = sim.eval(frame(testbench_.vector(t)));
    FEMU_CHECK(!orig_outputs_differ(out, golden_.outputs[t],
                                    inst_.num_orig_outputs),
               "mask-scan golden run diverges at cycle ", t);
    sim.step();
    ++res.cycles.setup_cycles;
  }
  for (std::size_t i = 0; i < n; ++i) {
    FEMU_CHECK(sim.state_bit(inst_.main_ffs[i]) ==
                   golden_.final_state().get(i),
               "mask-scan golden final state diverges at FF ", i);
  }

  for (std::size_t k = 0; k < faults.size(); ++k) {
    const Fault fault = faults[k];
    res.cycles.fault_cycles += position_mask(sim, fault.ff_index);

    // Init cycle: establish the reset state; cycle-0 faults are flipped
    // right here (state(0) = reset ^ one-hot).
    {
      BitVec in = idle_frame();
      in.set(inst_.ports.init, true);
      if (fault.cycle == 0) {
        in.set(inst_.ports.inject, true);
      }
      sim.eval(in);
      sim.step();
      ++res.cycles.fault_cycles;
    }

    FaultOutcome outcome{FaultClass::kLatent, kNoCycle, kNoCycle};
    bool failed = false;
    for (std::size_t t = 0; t < t_end; ++t) {
      BitVec in = frame(testbench_.vector(t));
      // The D-path XOR asserted during cycle c-1 flips the value captured
      // into state(c).
      if (fault.cycle >= 1 && t == fault.cycle - 1) {
        in.set(inst_.ports.inject, true);
      }
      const BitVec out = sim.eval(in);
      ++res.cycles.fault_cycles;
      if (orig_outputs_differ(out, golden_.outputs[t],
                              inst_.num_orig_outputs)) {
        FEMU_CHECK(t >= fault.cycle,
                   "mask-scan: output mismatch before injection (cycle ", t,
                   " < ", fault.cycle, ")");
        outcome.cls = FaultClass::kFailure;
        outcome.detect_cycle = static_cast<std::uint32_t>(t);
        failed = true;
        break;
      }
      sim.step();
    }
    if (!failed) {
      // Latent/silent split via the controller's golden-final-state
      // comparator (combinational, no extra cycles). "Converged at some
      // point" and "equal at the end" coincide for deterministic machines.
      bool equal = true;
      for (std::size_t i = 0; i < n && equal; ++i) {
        equal = sim.state_bit(inst_.main_ffs[i]) ==
                golden_.final_state().get(i);
      }
      outcome.cls = equal ? FaultClass::kSilent : FaultClass::kLatent;
    }
    outcomes[k] = outcome;
  }

  res.grading = CampaignResult(std::vector<Fault>(faults.begin(), faults.end()),
                               std::move(outcomes));
  return res;
}

// ---------------------------------------------------------------------------
// state-scan
// ---------------------------------------------------------------------------

LiteralEngine::Result LiteralEngine::run_state_scan(
    std::span<const Fault> faults) {
  const std::size_t t_end = testbench_.num_cycles();
  const std::size_t n = inst_.num_orig_dffs;
  LevelizedSimulator sim(inst_.circuit);
  Result res;
  std::vector<FaultOutcome> outcomes(faults.size());

  // Golden run (functional mode).
  for (std::size_t t = 0; t < t_end; ++t) {
    BitVec in = frame(testbench_.vector(t));
    in.set(inst_.ports.run_en, true);
    const BitVec out = sim.eval(in);
    FEMU_CHECK(!orig_outputs_differ(out, golden_.outputs[t],
                                    inst_.num_orig_outputs),
               "state-scan golden run diverges at cycle ", t);
    sim.step();
    ++res.cycles.setup_cycles;
  }
  // Faulty-image preparation: the controller writes one N-bit image per
  // fault into board RAM, ceil(N/word) words each. Pure cycle accounting —
  // the images themselves are golden.states[c] ^ one-hot(f).
  const std::uint64_t words_per_image = (n + 31) / 32;
  res.cycles.setup_cycles += faults.size() * words_per_image;

  // Runs one scan pass: shifts `image` in (when provided) while comparing the
  // ejected bits against the golden final state; returns that comparison.
  const auto scan_pass = [&](const BitVec* image) {
    bool eject_equal = true;
    for (std::size_t j = 0; j < n; ++j) {
      const bool ejected = sim.state_bit(inst_.shadow_ffs[n - 1]);
      if (ejected != golden_.final_state().get(n - 1 - j)) {
        eject_equal = false;
      }
      BitVec in = idle_frame();
      in.set(inst_.ports.scan_en, true);
      if (image != nullptr) {
        in.set(inst_.ports.scan_in, image->get(n - 1 - j));
      }
      sim.eval(in);
      sim.step();
    }
    return eject_equal;
  };
  const auto one_control_cycle = [&](std::size_t port) {
    BitVec in = idle_frame();
    in.set(port, true);
    sim.eval(in);
    sim.step();
  };

  // Index of the fault whose latent/silent verdict rides on the next eject.
  std::size_t pending = static_cast<std::size_t>(-1);

  for (std::size_t k = 0; k < faults.size(); ++k) {
    const Fault fault = faults[k];
    // save: shadow <- main (parks the previous fault's final state).
    one_control_cycle(inst_.ports.save_state);
    ++res.cycles.fault_cycles;

    // Shared scan: next image in, previous final state out.
    BitVec image = golden_.states[fault.cycle];
    image.flip(fault.ff_index);
    const bool eject_equal = scan_pass(&image);
    res.cycles.fault_cycles += n;
    if (pending != static_cast<std::size_t>(-1)) {
      outcomes[pending].cls =
          eject_equal ? FaultClass::kSilent : FaultClass::kLatent;
      pending = static_cast<std::size_t>(-1);
    }

    // load: main <- shadow (the faulty state, injection included).
    one_control_cycle(inst_.ports.load_state);
    ++res.cycles.fault_cycles;

    FaultOutcome outcome{FaultClass::kLatent, kNoCycle, kNoCycle};
    bool failed = false;
    for (std::size_t t = fault.cycle; t < t_end; ++t) {
      BitVec in = frame(testbench_.vector(t));
      in.set(inst_.ports.run_en, true);
      const BitVec out = sim.eval(in);
      ++res.cycles.fault_cycles;
      if (orig_outputs_differ(out, golden_.outputs[t],
                              inst_.num_orig_outputs)) {
        outcome.cls = FaultClass::kFailure;
        outcome.detect_cycle = static_cast<std::uint32_t>(t);
        failed = true;
        break;
      }
      sim.step();
    }
    outcomes[k] = outcome;
    if (!failed) {
      pending = k;  // verdict arrives with the next eject
    }
  }

  // Drain: one last save+scan ejects the final fault's state.
  if (!faults.empty()) {
    one_control_cycle(inst_.ports.save_state);
    const bool eject_equal = scan_pass(nullptr);
    res.cycles.setup_cycles += 1 + n;
    if (pending != static_cast<std::size_t>(-1)) {
      outcomes[pending].cls =
          eject_equal ? FaultClass::kSilent : FaultClass::kLatent;
    }
  }

  res.grading = CampaignResult(std::vector<Fault>(faults.begin(), faults.end()),
                               std::move(outcomes));
  return res;
}

// ---------------------------------------------------------------------------
// time-multiplexed
// ---------------------------------------------------------------------------

LiteralEngine::Result LiteralEngine::run_time_mux(
    std::span<const Fault> faults) {
  const std::size_t t_end = testbench_.num_cycles();
  LevelizedSimulator sim(inst_.circuit);
  Result res;
  std::vector<FaultOutcome> outcomes(faults.size());

  const auto one_control_cycle = [&](std::size_t port) {
    BitVec in = idle_frame();
    in.set(port, true);
    sim.eval(in);
    sim.step();
  };

  // Power-on: every FF is 0, so the checkpoint already holds golden state 0.
  std::size_t ckpt_cycle = 0;
  std::uint32_t prev_cycle = 0;

  for (std::size_t k = 0; k < faults.size(); ++k) {
    const Fault fault = faults[k];
    FEMU_CHECK(fault.cycle >= prev_cycle,
               "time-mux engine requires a cycle-sorted schedule");
    prev_cycle = fault.cycle;

    // Advance the on-chip checkpoint to the injection cycle: restore golden,
    // step it one testbench cycle, save. 3 clocks per cycle advanced.
    while (ckpt_cycle < fault.cycle) {
      one_control_cycle(inst_.ports.load_state);
      BitVec in = frame(testbench_.vector(ckpt_cycle));
      in.set(inst_.ports.ena_golden, true);
      sim.eval(in);
      sim.step();
      one_control_cycle(inst_.ports.save_state);
      res.cycles.setup_cycles += 3;
      ++ckpt_cycle;
    }

    res.cycles.fault_cycles += position_mask(sim, fault.ff_index);

    // Load with injection: golden <- checkpoint, faulty <- checkpoint ^ mask.
    {
      BitVec in = idle_frame();
      in.set(inst_.ports.load_state, true);
      in.set(inst_.ports.inject, true);
      sim.eval(in);
      sim.step();
      ++res.cycles.fault_cycles;
    }

    FaultOutcome outcome{FaultClass::kLatent, kNoCycle, kNoCycle};
    for (std::size_t t = fault.cycle; t < t_end; ++t) {
      // Golden phase: the shared network sees golden state; out_reg captures
      // the golden outputs; the golden FFs step.
      {
        BitVec in = frame(testbench_.vector(t));
        in.set(inst_.ports.ena_golden, true);
        sim.eval(in);
        sim.step();
        ++res.cycles.fault_cycles;
      }
      // Faulty phase: the network sees faulty state; the on-chip comparator
      // raises `detect` on any output deviation; the faulty FFs step.
      bool detect = false;
      {
        BitVec in = frame(testbench_.vector(t));
        in.set(inst_.ports.ena_faulty, true);
        const BitVec out = sim.eval(in);
        detect = out.get(inst_.ports.detect);
        sim.step();
        ++res.cycles.fault_cycles;
      }
      if (detect) {
        outcome.cls = FaultClass::kFailure;
        outcome.detect_cycle = static_cast<std::uint32_t>(t);
        break;
      }
      // state_equal is combinational on the FF outputs; the controller
      // samples it continuously, so probing costs no clock.
      const BitVec probe = sim.eval(idle_frame());
      if (probe.get(inst_.ports.state_equal)) {
        outcome.cls = FaultClass::kSilent;
        outcome.converge_cycle = static_cast<std::uint32_t>(t + 1);
        break;
      }
    }
    outcomes[k] = outcome;
  }

  res.grading = CampaignResult(std::vector<Fault>(faults.begin(), faults.end()),
                               std::move(outcomes));
  return res;
}

}  // namespace femu
