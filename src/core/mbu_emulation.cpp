#include "core/mbu_emulation.h"

#include <algorithm>

#include "common/error.h"

namespace femu {

CampaignCycles mbu_campaign_cycles(Technique technique,
                                   const CycleModelParams& p,
                                   std::span<const MbuFault> faults,
                                   std::span<const FaultOutcome> outcomes) {
  FEMU_CHECK(faults.size() == outcomes.size(), "mbu_campaign_cycles: ",
             faults.size(), " faults vs ", outcomes.size(), " outcomes");
  const std::uint64_t t_end = p.num_cycles;
  CampaignCycles cycles;
  std::uint32_t max_cycle = 0;

  for (std::size_t i = 0; i < faults.size(); ++i) {
    const MbuFault& fault = faults[i];
    const FaultOutcome& outcome = outcomes[i];
    FEMU_CHECK(fault.cycle < t_end, "MBU cycle ", fault.cycle,
               " beyond testbench ", t_end);
    max_cycle = std::max(max_cycle, fault.cycle);
    const std::uint64_t c = fault.cycle;

    switch (technique) {
      case Technique::kMaskScan: {
        // Full serial mask reload (k-hot pattern) + init + prefix replay.
        const std::uint64_t run = outcome.cls == FaultClass::kFailure
                                      ? outcome.detect_cycle + 1
                                      : t_end;
        cycles.fault_cycles += p.num_ffs + 1 + run;
        break;
      }
      case Technique::kStateScan: {
        // The scanned image carries the flips — cost identical to SEU.
        const std::uint64_t run = outcome.cls == FaultClass::kFailure
                                      ? outcome.detect_cycle - c + 1
                                      : t_end - c;
        cycles.fault_cycles += 2 + p.num_ffs + run;
        break;
      }
      case Technique::kTimeMux: {
        std::uint64_t len = 0;
        switch (outcome.cls) {
          case FaultClass::kFailure:
            len = outcome.detect_cycle - c + 1;
            break;
          case FaultClass::kSilent:
            len = outcome.converge_cycle - c;
            break;
          case FaultClass::kLatent:
            len = t_end - c;
            break;
        }
        cycles.fault_cycles += p.num_ffs + 1 + 2 * len;
        break;
      }
    }
  }

  switch (technique) {
    case Technique::kMaskScan:
      cycles.setup_cycles += t_end;
      break;
    case Technique::kStateScan: {
      cycles.setup_cycles += t_end;
      const std::uint64_t words_per_image =
          (p.num_ffs + p.ram_word - 1) / p.ram_word;
      cycles.setup_cycles += faults.size() * words_per_image;
      if (!faults.empty()) {
        cycles.setup_cycles += 1 + p.num_ffs;
      }
      break;
    }
    case Technique::kTimeMux:
      if (!faults.empty()) {
        cycles.setup_cycles += 3ull * max_cycle;
      }
      break;
  }
  return cycles;
}

}  // namespace femu
