#include "core/cycle_model.h"

#include "common/error.h"

namespace femu {

std::uint64_t mask_ring_cost(std::size_t prev, std::size_t ff,
                             std::size_t num_ffs) {
  FEMU_CHECK(ff < num_ffs, "mask ring: ff ", ff, " out of ", num_ffs);
  if (prev == static_cast<std::size_t>(-1)) {
    return static_cast<std::uint64_t>(ff) + 1;  // insert + rotate into place
  }
  FEMU_CHECK(prev < num_ffs, "mask ring: prev ", prev, " out of ", num_ffs);
  return static_cast<std::uint64_t>((ff + num_ffs - prev) % num_ffs);
}

std::uint64_t fault_emulation_cycles(Technique technique,
                                     const CycleModelParams& p,
                                     const Fault& fault,
                                     const FaultOutcome& outcome) {
  const std::uint64_t t_end = p.num_cycles;
  const std::uint64_t c = fault.cycle;
  FEMU_CHECK(c < t_end, "fault cycle ", c, " beyond testbench ", t_end);

  switch (technique) {
    case Technique::kMaskScan: {
      // One init cycle establishes the (possibly pre-flipped) reset state,
      // then the whole testbench replays from cycle 0 because mask-scan has
      // no state restore. Early exit on output mismatch only; latent/silent
      // are separated by the controller's golden-final-state comparator at
      // no extra cycle cost.
      const std::uint64_t run = outcome.cls == FaultClass::kFailure
                                    ? outcome.detect_cycle + 1
                                    : t_end;
      return 1 + run;
    }
    case Technique::kStateScan: {
      // save (1) + scan N (next image in / previous final state out, the
      // ejected bits are compared serially against the golden final state)
      // + load (1) + run from the injection cycle.
      const std::uint64_t run = outcome.cls == FaultClass::kFailure
                                    ? outcome.detect_cycle - c + 1
                                    : t_end - c;
      return 2 + p.num_ffs + run;
    }
    case Technique::kTimeMux: {
      // load-with-inject (1) + two clocks per emulated testbench cycle
      // (golden phase, faulty phase). Runs until output mismatch (failure),
      // state re-convergence (silent — the on-chip comparator's early exit),
      // or the end of the testbench (latent).
      std::uint64_t len = 0;
      switch (outcome.cls) {
        case FaultClass::kFailure:
          len = outcome.detect_cycle - c + 1;
          break;
        case FaultClass::kSilent:
          len = outcome.converge_cycle - c;
          break;
        case FaultClass::kLatent:
          len = t_end - c;
          break;
      }
      return 1 + 2 * len;
    }
  }
  FEMU_CHECK(false, "unknown technique");
  return 0;
}

CampaignCycles campaign_cycles(Technique technique, const CycleModelParams& p,
                               std::span<const Fault> faults,
                               std::span<const FaultOutcome> outcomes) {
  FEMU_CHECK(faults.size() == outcomes.size(), "campaign_cycles: ",
             faults.size(), " faults vs ", outcomes.size(), " outcomes");
  CampaignCycles cycles;

  // ---- per-fault work + mask-ring movement ----
  std::size_t mask_pos = static_cast<std::size_t>(-1);
  std::uint32_t max_cycle = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    std::uint64_t ring = 0;
    if (technique != Technique::kStateScan) {
      ring = mask_ring_cost(mask_pos, faults[i].ff_index, p.num_ffs);
      mask_pos = faults[i].ff_index;
    }
    cycles.fault_cycles +=
        ring + fault_emulation_cycles(technique, p, faults[i], outcomes[i]);
    max_cycle = std::max(max_cycle, faults[i].cycle);
  }

  // ---- setup / teardown ----
  switch (technique) {
    case Technique::kMaskScan:
      // Golden run (records outputs + final state into RAM / the
      // golden-final-state register).
      cycles.setup_cycles += p.num_cycles;
      break;
    case Technique::kStateScan: {
      // Golden run + faulty-image preparation (one RAM image per fault,
      // ceil(N/word) writes each) + the final save+scan that drains the last
      // fault's state for classification.
      cycles.setup_cycles += p.num_cycles;
      const std::uint64_t words_per_image =
          (p.num_ffs + p.ram_word - 1) / p.ram_word;
      cycles.setup_cycles += faults.size() * words_per_image;
      if (!faults.empty()) {
        cycles.setup_cycles += 1 + p.num_ffs;
      }
      break;
    }
    case Technique::kTimeMux:
      // No golden pre-run (the golden machine lives on-chip); the checkpoint
      // advances once per testbench cycle up to the last injection cycle,
      // 3 clocks each (restore golden, step, save).
      if (!faults.empty()) {
        cycles.setup_cycles += 3ull * max_cycle;
      }
      break;
  }
  return cycles;
}

}  // namespace femu
