#include "core/controller_cost.h"

#include <bit>

namespace femu {

namespace {

/// Width of a counter able to hold values in [0, n].
std::size_t counter_width(std::size_t n) {
  return static_cast<std::size_t>(std::bit_width(n));
}

}  // namespace

ControllerCost estimate_controller(Technique technique,
                                   const ControllerCostParams& p) {
  const std::size_t w_cycle = counter_width(p.num_cycles);
  const std::size_t w_fault = counter_width(p.num_faults);
  const std::size_t w_pos = counter_width(p.num_ffs);

  ControllerCost cost;

  // Common sequencing machinery.
  // Counters: ~1 LUT/bit for increment, ~1/4 LUT/bit for terminal compare.
  const std::size_t counter_bits = w_cycle + w_fault + w_pos;
  cost.ffs += counter_bits;
  cost.luts += counter_bits + counter_bits / 4;
  // RAM data register + addressing glue (the fault counter doubles as the
  // result address, so no separate address register).
  cost.ffs += p.ram_word;
  cost.luts += p.ram_word / 2 + 16;
  // Sequencing FSM (~12 states) + classification buffer.
  cost.ffs += 4 + 2;
  cost.luts += 28;

  switch (technique) {
    case Technique::kMaskScan:
      // Output comparator against golden responses from RAM: PO XOR + OR
      // tree. Golden-final-state register (N bits, written once after the
      // golden run) + full-width comparator for the latent/silent split.
      cost.luts += p.num_outputs + p.num_outputs / 2;
      cost.ffs += p.num_ffs;
      cost.luts += p.num_ffs + p.num_ffs / 2;
      break;
    case Technique::kStateScan:
      // Output comparator + a 1-bit serial comparator on the ejected state
      // (the shared scan makes the final-state check almost free).
      cost.luts += p.num_outputs + p.num_outputs / 2;
      cost.ffs += 2;
      cost.luts += 6;
      break;
    case Technique::kTimeMux:
      // No output comparator (detect/state_equal live in the instrument);
      // instead: two-phase sequencing, checkpoint-advance control, and a
      // result prefetch buffer that batches classifications to board RAM.
      cost.ffs += p.ram_word + 8;
      cost.luts += p.ram_word + 24;
      break;
  }
  return cost;
}

}  // namespace femu
