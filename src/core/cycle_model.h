#pragma once

#include <cstdint>
#include <span>

#include "core/technique.h"
#include "fault/fault.h"

namespace femu {

/// Parameters of the emulation schedule that the controller protocol depends
/// on (everything else comes from the per-fault outcomes).
struct CycleModelParams {
  std::size_t num_ffs = 0;     ///< N — flip-flops of the circuit under test
  std::size_t num_cycles = 0;  ///< T — testbench length
  std::size_t ram_word = 32;   ///< on-board RAM word width (state-scan prep)
};

/// Exact clock-cycle account of one emulation campaign, split the way the
/// paper discusses it (setup = golden run + chain fills + state-image prep +
/// checkpoint advances; the rest is per-fault work).
struct CampaignCycles {
  std::uint64_t setup_cycles = 0;
  std::uint64_t fault_cycles = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return setup_cycles + fault_cycles;
  }
  [[nodiscard]] double seconds_at_mhz(double mhz) const noexcept {
    return static_cast<double>(total()) / (mhz * 1e6);
  }
  [[nodiscard]] double us_per_fault(std::size_t faults,
                                    double mhz) const noexcept {
    return faults == 0 ? 0.0
                       : seconds_at_mhz(mhz) * 1e6 / static_cast<double>(faults);
  }
};

/// Cycles the mask ring needs to move the one-hot from `prev` to `ff`
/// (kNoCycle-style sentinel: pass prev = SIZE_MAX for the initial fill, which
/// costs ff+1 cycles — one to insert the '1', ff to rotate it into place).
[[nodiscard]] std::uint64_t mask_ring_cost(std::size_t prev, std::size_t ff,
                                           std::size_t num_ffs);

/// Clock cycles one fault costs, excluding mask-ring movement (which depends
/// on the previous fault — use campaign_cycles for whole schedules):
///   mask-scan : 1 + (failure ? d+1 : T)           (init + full-prefix run)
///   state-scan: 2 + N + (failure ? d-c+1 : T-c)   (save/load + scan + run)
///   time-mux  : 1 + 2*(failure ? d-c+1 :
///                      silent ? v-c : T-c)        (load + two-phase run)
/// Derivations and the literal-engine cross-check are in DESIGN.md §5.
[[nodiscard]] std::uint64_t fault_emulation_cycles(Technique technique,
                                                   const CycleModelParams& p,
                                                   const Fault& fault,
                                                   const FaultOutcome& outcome);

/// Whole-campaign account for a fault schedule and its outcomes (aligned
/// spans). Includes per-technique setup:
///   mask-scan : T (golden run) + initial mask fill
///   state-scan: T + F*ceil(N/ram_word) (faulty-image prep, Table 1's
///               7.2 Mbit) + N+1 (final eject drain)
///   time-mux  : initial mask fill + 3*max_inject_cycle (checkpoint advances)
[[nodiscard]] CampaignCycles campaign_cycles(
    Technique technique, const CycleModelParams& p,
    std::span<const Fault> faults, std::span<const FaultOutcome> outcomes);

}  // namespace femu
