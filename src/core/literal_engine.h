#pragma once

#include <span>

#include "core/cycle_model.h"
#include "core/instrument.h"
#include "fault/campaign_result.h"
#include "sim/golden.h"
#include "sim/levelized_sim.h"
#include "stim/testbench.h"

namespace femu {

/// Gate-level execution of the actual instrumented netlist under the
/// autonomous controller protocol — "the FPGA in software".
///
/// Where the fast path (AutonomousEmulator) derives emulation time from the
/// analytic controller account, this engine clocks the instrumented circuit
/// cycle by cycle: it shifts the mask ring bit-serially, scans state images
/// through the shadow chain, interleaves golden/faulty phases, and samples
/// the on-chip detect/state_equal comparators. Every clock is counted.
///
/// Its contract, enforced by the integration tests:
///   * classifications  == ParallelFaultSimulator's (and the serial sim's)
///   * cycle counts     == campaign_cycles()'s analytic account
/// which is what justifies using the fast path for b14-scale campaigns.
class LiteralEngine {
 public:
  LiteralEngine(const Circuit& original, const Testbench& testbench,
                Technique technique);

  struct Result {
    CampaignResult grading;
    CampaignCycles cycles;  ///< measured by counting simulated clocks
  };

  /// Runs the campaign. Time-mux requires a cycle-sorted schedule (the
  /// canonical cycle-major order satisfies this).
  [[nodiscard]] Result run(std::span<const Fault> faults);

  [[nodiscard]] const InstrumentedCircuit& instrumented() const noexcept {
    return inst_;
  }
  [[nodiscard]] const GoldenTrace& golden() const noexcept { return golden_; }

 private:
  Result run_mask_scan(std::span<const Fault> faults);
  Result run_state_scan(std::span<const Fault> faults);
  Result run_time_mux(std::span<const Fault> faults);

  // ---- shared plumbing ----
  /// Builds an instrumented-circuit input vector: original stimulus bits in
  /// place, all control bits 0.
  [[nodiscard]] BitVec frame(const BitVec& orig_inputs) const;
  [[nodiscard]] BitVec idle_frame() const;
  /// True when the original (first num_orig_outputs) PO bits differ.
  [[nodiscard]] static bool orig_outputs_differ(const BitVec& got,
                                                const BitVec& want,
                                                std::size_t count);
  /// Q of the last mask-chain FF (the ring feedback value).
  [[nodiscard]] bool mask_out_bit(const LevelizedSimulator& sim) const;
  /// Moves the mask ring one-hot to `ff`; returns clock cycles spent.
  std::uint64_t position_mask(LevelizedSimulator& sim, std::size_t ff);

  const Circuit& original_;
  const Testbench& testbench_;
  InstrumentedCircuit inst_;
  GoldenTrace golden_;
  std::size_t mask_pos_ = static_cast<std::size_t>(-1);
};

}  // namespace femu
