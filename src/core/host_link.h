#pragma once

#include <cstdint>

#include "core/cycle_model.h"

namespace femu {

/// Host-controlled fault emulation baseline, modelling the prior art the
/// paper improves on (Civera et al. [2]: the circuit is instrumented on the
/// FPGA but the host drives every fault over the bus — injection command,
/// run control, response readback — so link latency dominates).
struct HostLinkParams {
  /// One host<->board round trip including driver overhead (PCI-era boards
  /// sit in the tens of microseconds).
  double per_transaction_us = 50.0;
  /// Bus transactions the host issues per fault (inject + result readback).
  int transactions_per_fault = 2;
  /// Emulation clock while the FPGA is actually running vectors.
  double clock_mhz = 25.0;
};

/// Campaign wall-clock estimate: FPGA run cycles (same mask-scan-style
/// schedule as the autonomous system, so reuse its cycle account) plus the
/// per-fault host communication. With the defaults this lands near the
/// ~100 us/fault the paper cites for [2], versus microseconds for the
/// autonomous system — the communication bottleneck the paper removes.
[[nodiscard]] inline double host_link_campaign_seconds(
    const CampaignCycles& emulation_cycles, std::size_t num_faults,
    const HostLinkParams& params = {}) {
  const double emulation_s =
      emulation_cycles.seconds_at_mhz(params.clock_mhz);
  const double comm_s = static_cast<double>(num_faults) *
                        params.transactions_per_fault *
                        params.per_transaction_us * 1e-6;
  return emulation_s + comm_s;
}

}  // namespace femu
