#pragma once

#include <cstdint>

#include "core/technique.h"

namespace femu {

/// Memory budget of an autonomous emulation campaign, split between on-chip
/// FPGA block RAM and on-board SRAM the way the paper's Table 1 reports it
/// ("Board / FPGA RAM" column).
///
/// What lives where (and why):
///   FPGA RAM  — stimuli (T x PI bits; every technique replays them at full
///               clock rate), golden output responses (T x PO; mask/state-
///               scan compare against them — time-mux computes the golden
///               machine on-chip and needs no stored responses, which is why
///               its FPGA figure is the smallest), and for state-scan the
///               golden final state (N bits, streamed against the ejected
///               faulty state).
///   Board RAM — per-fault classification results (2 bits: failure/latent/
///               silent) and, for state-scan only, the pre-computed faulty
///               state images (F x N bits — the dominant term, the paper's
///               7.2 Mbit).
struct RamLayout {
  // FPGA block RAM
  std::uint64_t stimuli_bits = 0;
  std::uint64_t golden_output_bits = 0;
  std::uint64_t golden_final_state_bits = 0;
  // Board SRAM
  std::uint64_t state_image_bits = 0;
  std::uint64_t classification_bits = 0;

  [[nodiscard]] std::uint64_t fpga_bits() const noexcept {
    return stimuli_bits + golden_output_bits + golden_final_state_bits;
  }
  [[nodiscard]] std::uint64_t board_bits() const noexcept {
    return state_image_bits + classification_bits;
  }
};

struct RamLayoutParams {
  std::size_t num_inputs = 0;   ///< PI of the circuit under test
  std::size_t num_outputs = 0;  ///< PO
  std::size_t num_ffs = 0;      ///< N
  std::size_t num_cycles = 0;   ///< T
  std::size_t num_faults = 0;   ///< F
  std::size_t class_bits = 2;   ///< bits per recorded classification
};

[[nodiscard]] RamLayout compute_ram_layout(Technique technique,
                                           const RamLayoutParams& params);

}  // namespace femu
