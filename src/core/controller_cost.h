#pragma once

#include <cstdint>

#include "core/technique.h"

namespace femu {

/// FPGA area of the autonomous emulation controller (the block that replaces
/// the host: sequencing FSM, cycle/fault/position counters, RAM interface,
/// response comparators).
struct ControllerCost {
  std::size_t luts = 0;
  std::size_t ffs = 0;
};

struct ControllerCostParams {
  std::size_t num_inputs = 0;   ///< PI — response-comparator width driver
  std::size_t num_outputs = 0;  ///< PO
  std::size_t num_ffs = 0;      ///< N — golden-final-state register width
  std::size_t num_cycles = 0;   ///< T — cycle-counter width driver
  std::size_t num_faults = 0;   ///< F — fault-counter width driver
  std::size_t ram_word = 32;    ///< board RAM data width
};

/// Parametric area model, matching the paper's observation that "control
/// block overhead depends on the flip-flop number, test bench cycles and
/// circuit inputs and outputs". Terms (documented in the .cpp):
/// counters sized by log2(T), log2(F), log2(N); a RAM data register; the
/// sequencing FSM; per-technique comparators (mask-scan carries an N-bit
/// golden-final-state register + comparator, state-scan compares serially,
/// time-mux samples its in-circuit comparators and sequences two phases).
[[nodiscard]] ControllerCost estimate_controller(
    Technique technique, const ControllerCostParams& params);

}  // namespace femu
