#pragma once

#include <cstddef>
#include <vector>

#include "core/technique.h"
#include "netlist/circuit.h"

namespace femu {

/// Index sentinel for control ports that a technique does not use.
inline constexpr std::size_t kNoPort = static_cast<std::size_t>(-1);

/// Locations of the controller-facing ports an instrumentation transform
/// adds. Input entries index circuit.inputs() (original PIs come first),
/// output entries index circuit.outputs() (original POs come first).
struct ControlPorts {
  // ---- inputs ----
  std::size_t init = kNoPort;        ///< mask-scan: synchronous state init
  std::size_t inject = kNoPort;      ///< mask/time-mux: fire the masked flip
  std::size_t mask_shift = kNoPort;  ///< advance the one-hot mask chain
  std::size_t mask_in = kNoPort;     ///< serial data into the mask chain
  std::size_t scan_en = kNoPort;     ///< state-scan: shift the shadow chain
  std::size_t scan_in = kNoPort;     ///< serial data into the shadow chain
  std::size_t run_en = kNoPort;      ///< state-scan: functional-run enable
  std::size_t save_state = kNoPort;  ///< shadow<-main / checkpoint<-golden
  std::size_t load_state = kNoPort;  ///< main<-shadow / golden,faulty<-ckpt
  std::size_t ena_golden = kNoPort;  ///< time-mux: golden phase enable
  std::size_t ena_faulty = kNoPort;  ///< time-mux: faulty phase enable
  // ---- outputs ----
  std::size_t mask_out = kNoPort;     ///< end of the mask chain
  std::size_t scan_out = kNoPort;     ///< end of the shadow chain
  std::size_t detect = kNoPort;       ///< time-mux: output mismatch (faulty phase)
  std::size_t state_equal = kNoPort;  ///< time-mux: golden == faulty state
};

/// A circuit rewritten by one of the paper's injection techniques, together
/// with everything the emulation controller (and the literal engine) needs to
/// drive it. The original primary inputs/outputs keep their positions, so the
/// testbench applies unchanged.
struct InstrumentedCircuit {
  Circuit circuit{"uninstrumented"};
  Technique technique = Technique::kMaskScan;

  std::size_t num_orig_inputs = 0;
  std::size_t num_orig_outputs = 0;
  std::size_t num_orig_dffs = 0;

  ControlPorts ports;

  // Flip-flop index maps (positions in circuit.dffs() order), each sized
  // num_orig_dffs. Which vectors are populated depends on the technique.
  std::vector<std::size_t> main_ffs;    ///< faulty/functional FF per orig FF
  std::vector<std::size_t> golden_ffs;  ///< time-mux golden FF
  std::vector<std::size_t> mask_ffs;    ///< mask chain FF
  std::vector<std::size_t> shadow_ffs;  ///< state-scan shadow FF
  std::vector<std::size_t> state_ffs;   ///< time-mux checkpoint FF
  std::vector<std::size_t> outreg_ffs;  ///< time-mux golden-output capture
                                        ///< (sized num_orig_outputs)
};

/// Mask-scan instrumentation (paper technique 1, derived from [2] plus the
/// autonomy machinery). Adds per FF: a mask FF (one-hot ring chain) and an
/// inject/init network on the D pin.
[[nodiscard]] InstrumentedCircuit instrument_mask_scan(const Circuit& circuit);

/// State-scan instrumentation (paper technique 2). Adds per FF: a shadow
/// scan FF plus load/save/hold steering on the D pins.
[[nodiscard]] InstrumentedCircuit instrument_state_scan(const Circuit& circuit);

/// Time-multiplexed instrumentation (paper technique 3, Figure 1). Replaces
/// every FF with the 4-FF instrument (golden/faulty/mask/state), shares the
/// combinational logic between the two machines via DataOut muxes, and adds
/// the on-chip convergence and output-mismatch comparators. Also adds a
/// golden-output capture register (one bit per original PO) so outputs can be
/// compared across the two phases; DESIGN.md documents this as our concrete
/// reading of the paper's DetectadoN/EnaDetect signals.
[[nodiscard]] InstrumentedCircuit instrument_time_mux(const Circuit& circuit);

/// Dispatches on `technique`.
[[nodiscard]] InstrumentedCircuit instrument(const Circuit& circuit,
                                             Technique technique);

}  // namespace femu
