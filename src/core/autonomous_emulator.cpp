#include "core/autonomous_emulator.h"

#include "common/error.h"
#include "common/strings.h"

namespace femu {

AutonomousEmulator::AutonomousEmulator(const Circuit& circuit,
                                       const Testbench& testbench,
                                       EmulatorOptions options)
    : circuit_(circuit),
      testbench_(testbench),
      options_(options),
      engine_(circuit, testbench, options.campaign) {
  FEMU_CHECK(options_.clock_mhz > 0.0, "clock must be positive");
}

EmulationReport AutonomousEmulator::run(Technique technique,
                                        std::span<const Fault> faults) {
  EmulationReport report;
  report.technique = technique;
  report.grading = engine_.run(faults);
  report.host_engine_seconds = engine_.last_run_seconds();

  const CycleModelParams params{circuit_.num_dffs(), testbench_.num_cycles(),
                                options_.ram_word};
  report.cycles = campaign_cycles(technique, params, faults,
                                  report.grading.outcomes());
  report.emulation_seconds = report.cycles.seconds_at_mhz(options_.clock_mhz);
  report.us_per_fault =
      report.cycles.us_per_fault(faults.size(), options_.clock_mhz);

  if (options_.compute_area) {
    report.area = compute_area(technique, faults.size());
    report.fit = check_fit(options_.board, report.area->system());
    if (options_.enforce_fit && !report.fit.fits) {
      throw CapacityError(str_cat(
          "emulator system for '", circuit_.name(), "' with ",
          technique_name(technique), " does not fit ", options_.board.name,
          ": LUT ", format_percent(report.fit.lut_util), ", FF ",
          format_percent(report.fit.ff_util), ", FPGA RAM ",
          format_percent(report.fit.fpga_ram_util), ", board RAM ",
          format_percent(report.fit.board_ram_util)));
    }
  }
  return report;
}

EmulationReport AutonomousEmulator::run_complete(Technique technique) {
  const auto faults =
      complete_fault_list(circuit_.num_dffs(), testbench_.num_cycles());
  return run(technique, faults);
}

AreaReport AutonomousEmulator::compute_area(Technique technique,
                                            std::size_t num_faults) const {
  AreaReport area;
  const LutMapper mapper(options_.map_options);
  area.original = mapper.map(circuit_);
  const InstrumentedCircuit inst = instrument(circuit_, technique);
  area.instrumented = mapper.map(inst.circuit);

  const ControllerCostParams controller_params{
      circuit_.num_inputs(), circuit_.num_outputs(), circuit_.num_dffs(),
      testbench_.num_cycles(), num_faults, options_.ram_word};
  area.controller = estimate_controller(technique, controller_params);

  const RamLayoutParams ram_params{circuit_.num_inputs(),
                                   circuit_.num_outputs(),
                                   circuit_.num_dffs(),
                                   testbench_.num_cycles(),
                                   num_faults,
                                   /*class_bits=*/2};
  area.ram = compute_ram_layout(technique, ram_params);
  return area;
}

}  // namespace femu
