#include "core/ram_layout.h"

namespace femu {

RamLayout compute_ram_layout(Technique technique,
                             const RamLayoutParams& p) {
  RamLayout layout;
  layout.stimuli_bits =
      static_cast<std::uint64_t>(p.num_cycles) * p.num_inputs;
  layout.classification_bits =
      static_cast<std::uint64_t>(p.num_faults) * p.class_bits;

  switch (technique) {
    case Technique::kMaskScan:
      // Compares live outputs against stored golden responses; the golden
      // final state sits in controller registers (an FF cost, not RAM).
      layout.golden_output_bits =
          static_cast<std::uint64_t>(p.num_cycles) * p.num_outputs;
      break;
    case Technique::kStateScan:
      layout.golden_output_bits =
          static_cast<std::uint64_t>(p.num_cycles) * p.num_outputs;
      // Streamed against the ejected faulty state during the shared scan.
      layout.golden_final_state_bits = p.num_ffs;
      // One pre-computed faulty image per fault — the dominant term.
      layout.state_image_bits =
          static_cast<std::uint64_t>(p.num_faults) * p.num_ffs;
      break;
    case Technique::kTimeMux:
      // Golden machine runs on-chip: stimuli are the only FPGA-RAM content.
      break;
  }
  return layout;
}

}  // namespace femu
