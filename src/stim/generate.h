#pragma once

#include <cstdint>

#include "stim/testbench.h"

namespace femu {

/// Uniform random stimuli: every input bit is an independent fair coin.
/// The paper's 160-vector set is not published; this is the substitute
/// documented in DESIGN.md (any fixed vector set of the same length drives
/// the same controller schedule).
[[nodiscard]] Testbench random_testbench(std::size_t input_width,
                                         std::size_t cycles,
                                         std::uint64_t seed);

/// Biased random stimuli: each bit is 1 with probability `p_one`. Useful for
/// control-dominated circuits whose enables should stay mostly inactive.
[[nodiscard]] Testbench weighted_testbench(std::size_t input_width,
                                           std::size_t cycles, double p_one,
                                           std::uint64_t seed);

/// Burst stimuli: each input holds its value for a geometrically distributed
/// number of cycles (mean `mean_hold`), modelling bus-like activity where
/// signals are stable for several cycles.
[[nodiscard]] Testbench burst_testbench(std::size_t input_width,
                                        std::size_t cycles,
                                        std::size_t mean_hold,
                                        std::uint64_t seed);

/// All-zero stimuli (quiescent baseline; useful in tests).
[[nodiscard]] Testbench zero_testbench(std::size_t input_width,
                                       std::size_t cycles);

}  // namespace femu
