#include "stim/testbench.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/strings.h"

namespace femu {

void Testbench::add_vector(BitVec vector) {
  FEMU_CHECK(vector.size() == input_width_, "vector width ", vector.size(),
             " != testbench width ", input_width_);
  vectors_.push_back(std::move(vector));
}

const BitVec& Testbench::vector(std::size_t cycle) const {
  FEMU_CHECK(cycle < vectors_.size(), "cycle ", cycle, " out of range ",
             vectors_.size());
  return vectors_[cycle];
}

void Testbench::save(std::ostream& out) const {
  out << "femu-vectors " << input_width_ << " " << vectors_.size() << "\n";
  for (const auto& vector : vectors_) {
    out << vector.to_string() << "\n";
  }
}

void Testbench::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw Error(str_cat("cannot open '", path, "' for writing"));
  }
  save(out);
}

Testbench Testbench::load(std::istream& in) {
  std::string magic;
  std::size_t width = 0;
  std::size_t cycles = 0;
  in >> magic >> width >> cycles;
  if (!in || magic != "femu-vectors") {
    throw ParseError("testbench file: bad header");
  }
  Testbench tb(width);
  std::string line;
  std::getline(in, line);  // consume header newline
  for (std::size_t t = 0; t < cycles; ++t) {
    if (!std::getline(in, line)) {
      throw ParseError(str_cat("testbench file: expected ", cycles,
                               " vectors, got ", t));
    }
    const auto text = trim(line);
    if (text.size() != width) {
      throw ParseError(str_cat("testbench file: vector ", t, " has width ",
                               text.size(), ", expected ", width));
    }
    tb.add_vector(BitVec::from_string(text));
  }
  return tb;
}

Testbench Testbench::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError(str_cat("cannot open vector file '", path, "'"));
  }
  return load(in);
}

}  // namespace femu
