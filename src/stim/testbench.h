#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/bitvec.h"

namespace femu {

/// Ordered input-vector sequence applied to a circuit, one vector per clock
/// cycle. In the paper's system the testbench is downloaded into on-board RAM
/// once and replayed by the emulation controller for every fault.
class Testbench {
 public:
  explicit Testbench(std::size_t input_width) : input_width_(input_width) {}

  /// Appends one cycle's input vector (width must match).
  void add_vector(BitVec vector);

  [[nodiscard]] std::size_t input_width() const noexcept {
    return input_width_;
  }
  [[nodiscard]] std::size_t num_cycles() const noexcept {
    return vectors_.size();
  }

  [[nodiscard]] std::span<const BitVec> vectors() const noexcept {
    return vectors_;
  }

  [[nodiscard]] const BitVec& vector(std::size_t cycle) const;

  /// RAM bits needed to store the stimuli (T x PI), Table 1's stimulus term.
  [[nodiscard]] std::size_t storage_bits() const noexcept {
    return num_cycles() * input_width_;
  }

  // ---- persistence (plain text: header line, then one vector per line) ----

  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static Testbench load(std::istream& in);
  [[nodiscard]] static Testbench load_file(const std::string& path);

 private:
  std::size_t input_width_;
  std::vector<BitVec> vectors_;
};

}  // namespace femu
