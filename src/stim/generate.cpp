#include "stim/generate.h"

#include "common/error.h"
#include "common/rng.h"

namespace femu {

Testbench random_testbench(std::size_t input_width, std::size_t cycles,
                           std::uint64_t seed) {
  Rng rng(seed);
  Testbench tb(input_width);
  for (std::size_t t = 0; t < cycles; ++t) {
    BitVec vector(input_width);
    for (std::size_t i = 0; i < input_width; ++i) {
      vector.set(i, rng.next_bit());
    }
    tb.add_vector(std::move(vector));
  }
  return tb;
}

Testbench weighted_testbench(std::size_t input_width, std::size_t cycles,
                             double p_one, std::uint64_t seed) {
  Rng rng(seed);
  Testbench tb(input_width);
  for (std::size_t t = 0; t < cycles; ++t) {
    BitVec vector(input_width);
    for (std::size_t i = 0; i < input_width; ++i) {
      vector.set(i, rng.bernoulli(p_one));
    }
    tb.add_vector(std::move(vector));
  }
  return tb;
}

Testbench burst_testbench(std::size_t input_width, std::size_t cycles,
                          std::size_t mean_hold, std::uint64_t seed) {
  FEMU_CHECK(mean_hold > 0, "mean_hold must be positive");
  Rng rng(seed);
  const double p_flip = 1.0 / static_cast<double>(mean_hold);
  BitVec current(input_width);
  for (std::size_t i = 0; i < input_width; ++i) {
    current.set(i, rng.next_bit());
  }
  Testbench tb(input_width);
  for (std::size_t t = 0; t < cycles; ++t) {
    for (std::size_t i = 0; i < input_width; ++i) {
      if (rng.bernoulli(p_flip)) {
        current.flip(i);
      }
    }
    tb.add_vector(current);
  }
  return tb;
}

Testbench zero_testbench(std::size_t input_width, std::size_t cycles) {
  Testbench tb(input_width);
  for (std::size_t t = 0; t < cycles; ++t) {
    tb.add_vector(BitVec(input_width));
  }
  return tb;
}

}  // namespace femu
