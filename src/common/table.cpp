#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace femu {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FEMU_CHECK(!headers_.empty(), "TextTable needs at least one column");
  align_.assign(headers_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

void TextTable::set_align(std::vector<Align> align) {
  FEMU_CHECK(align.size() == headers_.size(),
             "alignment arity ", align.size(), " != ", headers_.size());
  align_ = std::move(align);
}

void TextTable::add_row(std::vector<std::string> cells) {
  FEMU_CHECK(cells.size() == headers_.size(), "row arity ", cells.size(),
             " != header arity ", headers_.size());
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TextTable::add_separator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

std::vector<std::size_t> TextTable::column_widths() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  return widths;
}

namespace {

void append_cell(std::string& line, const std::string& text, std::size_t width,
                 Align align) {
  const std::size_t pad = width - std::min(width, text.size());
  if (align == Align::kRight) {
    line.append(pad, ' ');
    line.append(text);
  } else {
    line.append(text);
    line.append(pad, ' ');
  }
}

}  // namespace

std::string TextTable::to_ascii() const {
  const auto widths = column_widths();
  const auto rule = [&widths]() {
    std::string line = "+";
    for (const auto w : widths) {
      line.append(w + 2, '-');
      line.push_back('+');
    }
    line.push_back('\n');
    return line;
  };

  std::string out = rule();
  {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      line.push_back(' ');
      append_cell(line, headers_[c], widths[c], Align::kLeft);
      line.append(" |");
    }
    line.push_back('\n');
    out += line;
  }
  out += rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      out += rule();
      continue;
    }
    std::string line = "|";
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      line.push_back(' ');
      append_cell(line, row.cells[c], widths[c], align_[c]);
      line.append(" |");
    }
    line.push_back('\n');
    out += line;
  }
  out += rule();
  return out;
}

std::string TextTable::to_markdown() const {
  const auto widths = column_widths();
  std::string out = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.push_back(' ');
    append_cell(out, headers_[c], widths[c], Align::kLeft);
    out.append(" |");
  }
  out.push_back('\n');
  out.push_back('|');
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.push_back(align_[c] == Align::kRight ? '-' : ':');
    out.append(widths[c], '-');
    out.push_back(align_[c] == Align::kRight ? ':' : '-');
    out.push_back('|');
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    if (row.separator) {
      continue;
    }
    out.push_back('|');
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      out.push_back(' ');
      append_cell(out, row.cells[c], widths[c], align_[c]);
      out.append(" |");
    }
    out.push_back('\n');
  }
  return out;
}

std::string TextTable::to_csv() const {
  const auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (const char c : cell) {
      if (c == '"') {
        quoted += "\"\"";
      } else {
        quoted.push_back(c);
      }
    }
    quoted.push_back('"');
    return quoted;
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : ",") << escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << escape(row.cells[c]);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace femu
