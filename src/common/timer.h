#pragma once

#include <chrono>

namespace femu {

/// Monotonic wall-clock stopwatch, used to time the software baselines
/// (serial fault simulation) so benches can report measured µs/fault.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_micros() const noexcept {
    return elapsed_seconds() * 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace femu
