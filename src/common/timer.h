#pragma once

#include <chrono>
#include <cstdint>

namespace femu {

/// Monotonic nanosecond timestamp (steady_clock since its epoch). All spans
/// and heartbeats in the telemetry layer share this single clock source so
/// timestamps from different threads land on one comparable timeline.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Monotonic wall-clock stopwatch, used to time the software baselines
/// (serial fault simulation) so benches can report measured µs/fault.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_micros() const noexcept {
    return elapsed_seconds() * 1e6;
  }

  [[nodiscard]] std::uint64_t elapsed_nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace femu
