#include "common/bitvec.h"

#include <bit>

#include "common/error.h"

namespace femu {

namespace {

constexpr std::size_t word_index(std::size_t bit) { return bit / 64; }
constexpr std::uint64_t bit_mask(std::size_t bit) {
  return std::uint64_t{1} << (bit % 64);
}
constexpr std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

}  // namespace

BitVec::BitVec(std::size_t size, bool value)
    : size_(size),
      words_(words_for(size), value ? ~std::uint64_t{0} : std::uint64_t{0}) {
  mask_tail();
}

void BitVec::resize(std::size_t size, bool value) {
  const std::size_t old_size = size_;
  size_ = size;
  words_.resize(words_for(size), std::uint64_t{0});
  if (value && size > old_size) {
    for (std::size_t i = old_size; i < size; ++i) {
      set(i, true);
    }
  }
  mask_tail();
}

bool BitVec::get(std::size_t index) const {
  FEMU_CHECK(index < size_, "BitVec::get index ", index, " size ", size_);
  return (words_[word_index(index)] & bit_mask(index)) != 0;
}

void BitVec::set(std::size_t index, bool value) {
  FEMU_CHECK(index < size_, "BitVec::set index ", index, " size ", size_);
  if (value) {
    words_[word_index(index)] |= bit_mask(index);
  } else {
    words_[word_index(index)] &= ~bit_mask(index);
  }
}

void BitVec::flip(std::size_t index) {
  FEMU_CHECK(index < size_, "BitVec::flip index ", index, " size ", size_);
  words_[word_index(index)] ^= bit_mask(index);
}

void BitVec::set_all() {
  for (auto& word : words_) {
    word = ~std::uint64_t{0};
  }
  mask_tail();
}

void BitVec::clear_all() {
  for (auto& word : words_) {
    word = 0;
  }
}

std::size_t BitVec::popcount() const noexcept {
  std::size_t count = 0;
  for (const auto word : words_) {
    count += static_cast<std::size_t>(std::popcount(word));
  }
  return count;
}

bool BitVec::any() const noexcept {
  for (const auto word : words_) {
    if (word != 0) {
      return true;
    }
  }
  return false;
}

std::size_t BitVec::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  FEMU_CHECK(size_ == other.size_, "BitVec size mismatch: ", size_, " vs ",
             other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] ^= other.words_[w];
  }
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  FEMU_CHECK(size_ == other.size_, "BitVec size mismatch: ", size_, " vs ",
             other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  FEMU_CHECK(size_ == other.size_, "BitVec size mismatch: ", size_, " vs ",
             other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= other.words_[w];
  }
  return *this;
}

std::string BitVec::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = size_; i-- > 0;) {
    out.push_back(get(i) ? '1' : '0');
  }
  return out;
}

BitVec BitVec::from_string(std::string_view text) {
  BitVec out(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[text.size() - 1 - i];
    FEMU_CHECK(c == '0' || c == '1', "BitVec::from_string bad char '", c, "'");
    out.set(i, c == '1');
  }
  return out;
}

std::uint64_t BitVec::hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ size_;
  for (const auto word : words_) {
    h ^= word;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

void BitVec::assign_words(std::size_t size,
                          std::span<const std::uint64_t> words) {
  FEMU_CHECK(words.size() == words_for(size), "BitVec::assign_words: ",
             words.size(), " words for ", size, " bits");
  size_ = size;
  words_.assign(words.begin(), words.end());
  mask_tail();
}

void BitVec::mask_tail() noexcept {
  const std::size_t tail = size_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

}  // namespace femu
