#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace femu {

namespace detail {

inline void str_cat_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void str_cat_into(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  str_cat_into(os, rest...);
}

}  // namespace detail

/// Concatenates all arguments using their ostream formatting.
/// gcc 12 has no std::format; this is the library-wide replacement.
template <typename... Args>
[[nodiscard]] std::string str_cat(const Args&... args) {
  std::ostringstream os;
  detail::str_cat_into(os, args...);
  return os.str();
}

/// Splits `text` on `sep`, dropping empty pieces when `keep_empty` is false.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep,
                                             bool keep_empty = false);

/// Removes leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// ASCII lower-casing (identifiers in .bench files are case-insensitive).
[[nodiscard]] std::string to_lower(std::string_view text);

/// True when `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Formats `value` with `digits` digits after the decimal point.
[[nodiscard]] std::string format_fixed(double value, int digits);

/// Formats a ratio as a percentage string, e.g. 0.492 -> "49.2%".
[[nodiscard]] std::string format_percent(double ratio, int digits = 1);

/// Groups thousands for readability, e.g. 34400 -> "34,400".
[[nodiscard]] std::string format_grouped(long long value);

}  // namespace femu
