#pragma once

#include <stdexcept>
#include <string>

#include "common/strings.h"

namespace femu {

/// Base exception for all library failures. Carries the source location of the
/// failed check so campaign drivers can report actionable diagnostics.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
  Error(const std::string& message, const char* file, int line)
      : std::runtime_error(message), file_(file), line_(line) {}

  /// Source file of the failed check, or nullptr when unknown.
  [[nodiscard]] const char* file() const noexcept { return file_; }
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] bool has_location() const noexcept { return file_ != nullptr; }

 private:
  const char* file_ = nullptr;
  int line_ = 0;
};

/// Thrown when a netlist fails structural validation (combinational loop,
/// dangling input, multiple drivers, ...).
class NetlistError : public Error {
 public:
  using Error::Error;
};

/// Thrown when parsing an external file (.bench, vector files) fails.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a design does not fit the target board resources.
class CapacityError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* file, int line,
                                             const char* expr,
                                             const std::string& message) {
  throw Error(str_cat(file, ":", line, ": check failed: ", expr,
                      message.empty() ? "" : " — ", message),
              file, line);
}

}  // namespace detail

}  // namespace femu

/// Invariant check that throws femu::Error with file/line context.
/// Used for API misuse and internal invariants alike; campaigns are long-lived
/// batch jobs, so we prefer an exception with context over abort().
#define FEMU_CHECK(cond, ...)                                      \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::femu::detail::throw_check_failure(__FILE__, __LINE__,      \
                                          #cond,                   \
                                          ::femu::str_cat(__VA_ARGS__)); \
    }                                                              \
  } while (false)
