#pragma once

#include <string>
#include <vector>

namespace femu {

/// Column alignment for TextTable rendering.
enum class Align { kLeft, kRight };

/// Small report-table builder used by the benches to print paper-style tables
/// (ASCII for the terminal, Markdown for EXPERIMENTS.md, CSV for scripts).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Overrides the default alignment (first column left, rest right).
  void set_align(std::vector<Align> align);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator (ASCII rendering only).
  void add_separator();

  [[nodiscard]] std::string to_ascii() const;
  [[nodiscard]] std::string to_markdown() const;
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  [[nodiscard]] std::vector<std::size_t> column_widths() const;

  std::vector<std::string> headers_;
  std::vector<Align> align_;
  std::vector<Row> rows_;
};

}  // namespace femu
