#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace femu {

/// Deterministic index-range fan-out for one-time construction work.
///
/// Splits [0, n) into at most `num_threads` contiguous ranges and runs
/// `fn(begin, end)` on each, the first range on the calling thread. This is
/// the construction-side analogue of the campaign sharder: callers guarantee
/// every range writes a disjoint slice of the output (per-FF cone rows,
/// per-cycle trace snapshots, per-cycle word-image blocks), so the result is
/// bit-identical to the serial loop for any thread count — parallelism here
/// is purely a latency knob, never an outcome knob.
///
/// `num_threads == 0` means std::thread::hardware_concurrency(); 1 runs the
/// plain loop with no thread spawned. The first exception thrown by any
/// range is rethrown on the calling thread after all ranges join.
template <typename Fn>
void parallel_for_ranges(std::size_t n, unsigned num_threads, const Fn& fn) {
  if (n == 0) {
    return;
  }
  std::size_t threads =
      num_threads == 0 ? std::thread::hardware_concurrency() : num_threads;
  threads = std::clamp<std::size_t>(threads, 1, n);
  if (threads == 1) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t chunk = (n + threads - 1) / threads;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto guarded = [&](std::size_t begin, std::size_t end) {
    try {
      fn(begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&guarded, begin, end] { guarded(begin, end); });
  }
  guarded(0, std::min(chunk, n));
  for (std::thread& worker : pool) {
    worker.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace femu
