#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace femu {

/// Dynamically sized bit vector stored in 64-bit words.
///
/// This is the core value type of the fault-grading stack: circuit states,
/// output snapshots and fault masks are all BitVecs. The word storage is
/// exposed read-only so the 64-way parallel simulator can compare whole
/// machine states with word operations.
class BitVec {
 public:
  static constexpr std::size_t kWordBits = 64;

  BitVec() = default;

  /// Creates a vector of `size` bits, all initialised to `value`.
  explicit BitVec(std::size_t size, bool value = false);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Resizes to `size` bits; new bits are `value`.
  void resize(std::size_t size, bool value = false);

  [[nodiscard]] bool get(std::size_t index) const;
  void set(std::size_t index, bool value);
  void flip(std::size_t index);

  void set_all();
  void clear_all();

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// Index of the first set bit, or size() when none is set.
  [[nodiscard]] std::size_t find_first() const noexcept;

  BitVec& operator^=(const BitVec& other);
  BitVec& operator|=(const BitVec& other);
  BitVec& operator&=(const BitVec& other);

  friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Read-only view of the backing words (tail bits beyond size() are zero).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Rebuilds the vector from a whole-word image (the words() layout):
  /// `size` bits backed by exactly ceil(size/64) words. Junk bits beyond
  /// `size` in the last word are masked off. The bulk-load path for
  /// deserializers — equivalent to size/resize + per-bit set, without the
  /// per-bit cost.
  void assign_words(std::size_t size, std::span<const std::uint64_t> words);

  /// Bits rendered most-significant-first, e.g. BitVec of {1,0,1} -> "101".
  [[nodiscard]] std::string to_string() const;

  /// Parses a string of '0'/'1' characters (most-significant-first).
  [[nodiscard]] static BitVec from_string(std::string_view text);

  /// FNV-style hash of size and contents, for golden-trace fingerprints.
  [[nodiscard]] std::uint64_t hash() const noexcept;

 private:
  void mask_tail() noexcept;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace femu
