#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>

namespace femu {

std::vector<std::string> split(std::string_view text, char sep,
                               bool keep_empty) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    const std::size_t stop = (end == std::string_view::npos) ? text.size() : end;
    std::string_view piece = text.substr(start, stop - start);
    if (keep_empty || !piece.empty()) {
      pieces.emplace_back(piece);
    }
    if (end == std::string_view::npos) {
      break;
    }
    start = end + 1;
  }
  return pieces;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string format_percent(double ratio, int digits) {
  return format_fixed(ratio * 100.0, digits) + "%";
}

std::string format_grouped(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  if (negative) {
    out.push_back('-');
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace femu
