#pragma once

#include <cstdint>

namespace femu {

/// Deterministic pseudo-random generator (xoshiro256** seeded via splitmix64).
///
/// The standard library distributions are implementation-defined, so fault
/// campaigns seeded through <random> would not reproduce across toolchains.
/// Everything in this library that needs randomness (stimulus vectors, random
/// circuits, fault sampling) goes through this generator, which produces the
/// same stream on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next 64 uniformly random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be nonzero.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p` (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    return next_double() < p;
  }

  /// Random single bit.
  [[nodiscard]] bool next_bit() noexcept { return (next_u64() & 1) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace femu
